// Package workload generates the document access patterns of the paper's
// evaluation (§4, Method): a sequential ID list simulating large-scale
// batch processing, and a query-log-style list simulating the ranked
// output of real search queries hitting a document store.
package workload

import "math/rand"

// Sequential returns n document IDs cycling 0, 1, 2, ... over a collection
// of numDocs documents — the paper's batch-processing access pattern.
func Sequential(numDocs, n int) []int {
	if numDocs <= 0 || n <= 0 {
		return nil
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i % numDocs
	}
	return ids
}

// QueryLog returns n document IDs with the skewed, non-sequential shape of
// IDs surfaced by ranked retrieval: query popularity follows a Zipf law,
// so some documents are requested many times while most are rare, and
// consecutive requests land far apart in the collection.
//
// Document popularity ranks are decoupled from document position by a
// seeded permutation — in a real index, nothing makes low IDs popular.
// Deterministic in seed.
func QueryLog(numDocs, n int, seed int64) []int {
	if numDocs <= 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(numDocs)
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(numDocs-1))
	ids := make([]int, n)
	for i := range ids {
		ids[i] = perm[int(zipf.Uint64())]
	}
	return ids
}

// Uniform returns n document IDs drawn uniformly at random — a harsher
// random-access pattern than QueryLog (no cache-friendly skew), used by
// ablation benches. Deterministic in seed.
func Uniform(numDocs, n int, seed int64) []int {
	if numDocs <= 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int, n)
	for i := range ids {
		ids[i] = rng.Intn(numDocs)
	}
	return ids
}
