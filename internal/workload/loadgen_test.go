package workload

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeGetter is an in-memory Getter with optional failure injection.
type fakeGetter struct {
	docs     [][]byte
	calls    atomic.Int64
	inflight atomic.Int64
	peak     atomic.Int64
}

var errNoDoc = errors.New("no such document")

func (f *fakeGetter) GetAppend(dst []byte, id int) ([]byte, error) {
	f.calls.Add(1)
	cur := f.inflight.Add(1)
	defer f.inflight.Add(-1)
	for {
		p := f.peak.Load()
		if cur <= p || f.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	if id < 0 || id >= len(f.docs) {
		return dst, errNoDoc
	}
	return append(dst, f.docs[id]...), nil
}

func fakeDocs(n int) [][]byte {
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = []byte(fmt.Sprintf("document-%d-body", i))
	}
	return docs
}

func TestRunCountsRequestsAndBytes(t *testing.T) {
	g := &fakeGetter{docs: fakeDocs(10)}
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1}
	var wantBytes int64
	for _, id := range ids {
		wantBytes += int64(len(g.docs[id]))
	}
	res := Run(g, ids, 4)
	if res.Requests != int64(len(ids)) {
		t.Errorf("Requests = %d, want %d", res.Requests, len(ids))
	}
	if res.Errors != 0 {
		t.Errorf("Errors = %d, want 0", res.Errors)
	}
	if res.Bytes != wantBytes {
		t.Errorf("Bytes = %d, want %d", res.Bytes, wantBytes)
	}
	if g.calls.Load() != int64(len(ids)) {
		t.Errorf("getter saw %d calls, want %d", g.calls.Load(), len(ids))
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	if res.Throughput() <= 0 {
		t.Error("Throughput not positive")
	}
}

func TestRunReportsErrors(t *testing.T) {
	g := &fakeGetter{docs: fakeDocs(5)}
	res := Run(g, []int{0, 99, 1, -1, 2}, 2)
	if res.Errors != 2 {
		t.Errorf("Errors = %d, want 2", res.Errors)
	}
	if res.Requests != 5 {
		t.Errorf("Requests = %d, want 5", res.Requests)
	}
}

func TestRunConcurrencyIsBounded(t *testing.T) {
	g := &fakeGetter{docs: fakeDocs(4)}
	ids := make([]int, 1000)
	for i := range ids {
		ids[i] = i % 4
	}
	Run(g, ids, 3)
	if peak := g.peak.Load(); peak > 3 {
		t.Errorf("peak in-flight = %d, want <= 3", peak)
	}
}

func TestRunEdgeCases(t *testing.T) {
	g := &fakeGetter{docs: fakeDocs(3)}
	if res := Run(g, nil, 8); res.Requests != 0 || res.Errors != 0 {
		t.Errorf("empty id list: %+v", res)
	}
	// Concurrency below 1 and above len(ids) both get clamped.
	if res := Run(g, []int{1}, 0); res.Requests != 1 || res.Errors != 0 {
		t.Errorf("clamped concurrency: %+v", res)
	}
	if res := Run(g, []int{0, 1}, 64); res.Requests != 2 || res.Errors != 0 {
		t.Errorf("oversized concurrency: %+v", res)
	}
}

func TestHTTPGetter(t *testing.T) {
	docs := fakeDocs(6)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, "/doc/")
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 || id >= len(docs) {
			http.Error(w, "no such document", http.StatusNotFound)
			return
		}
		w.Write(docs[id])
	}))
	defer ts.Close()

	g := &HTTPGetter{BaseURL: ts.URL, Client: ts.Client()}
	buf, err := g.GetAppend([]byte("prefix-"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := "prefix-" + string(docs[2]); string(buf) != want {
		t.Errorf("GetAppend = %q, want %q", buf, want)
	}
	// Errors leave dst unchanged and mention the status.
	buf, err = g.GetAppend([]byte("keep"), 99)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("expected 404 error, got %v", err)
	}
	if string(buf) != "keep" {
		t.Errorf("failed GetAppend mutated dst: %q", buf)
	}

	res := Run(g, []int{0, 1, 2, 3, 4, 5, 0, 1}, 4)
	if res.Errors != 0 || res.Requests != 8 {
		t.Errorf("HTTP load run: %+v", res)
	}
}

// TestHTTPGetterCapsErrorBody: a server answering errors with a huge
// body must neither grow the caller's reused buffer nor produce an
// error string embedding the whole page — the regression that let one
// error page permanently inflate every worker's buffer.
func TestHTTPGetterCapsErrorBody(t *testing.T) {
	big := bytes.Repeat([]byte("error page filler "), 1<<16) // ~1.2 MiB
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write(big)
	}))
	defer ts.Close()

	g := &HTTPGetter{BaseURL: ts.URL, Client: ts.Client()}
	dst := append(make([]byte, 0, 64), "keep"...)
	got, err := g.GetAppend(dst, 1)
	if err == nil {
		t.Fatal("500 response reported no error")
	}
	if string(got) != "keep" {
		t.Errorf("dst content changed: %q", got)
	}
	if cap(got) != cap(dst) {
		t.Errorf("error response grew the reused buffer: cap %d -> %d", cap(dst), cap(got))
	}
	if len(err.Error()) > errBodyLimit+256 {
		t.Errorf("error string is %d bytes; body capture must be capped near %d", len(err.Error()), errBodyLimit)
	}
	if !strings.Contains(err.Error(), "500") || !strings.Contains(err.Error(), "error page filler") {
		t.Errorf("error lost the status or body prefix: %v", err)
	}

	// A load run against an all-error server must not accumulate memory
	// in worker buffers either (each worker keeps reusing its own).
	res := Run(g, []int{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if res.Errors != 8 {
		t.Errorf("Errors = %d, want 8", res.Errors)
	}
}

// memStore is an in-memory Getter+Appender for RunMixed tests.
type memStore struct {
	mu   sync.Mutex
	docs [][]byte
}

func (m *memStore) GetAppend(dst []byte, id int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || id >= len(m.docs) {
		return dst, fmt.Errorf("no doc %d", id)
	}
	return append(dst, m.docs[id]...), nil
}

func (m *memStore) Append(doc []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.docs = append(m.docs, append([]byte(nil), doc...))
	return len(m.docs) - 1, nil
}

func TestRunMixed(t *testing.T) {
	store := &memStore{}
	var appends [][]byte
	for i := 0; i < 10; i++ {
		store.Append([]byte(fmt.Sprintf("seed doc %d", i)))
		appends = append(appends, []byte(fmt.Sprintf("appended doc %d", i)))
	}
	ids := Sequential(10, 90)
	res := RunMixed(store, store, ids, appends, 4)
	if res.Errors != 0 {
		t.Fatalf("mixed run errors: %+v", res)
	}
	if res.Reads != 90 || res.Appends != 10 {
		t.Fatalf("op counts: %+v", res)
	}
	if len(store.docs) != 20 {
		t.Fatalf("store holds %d docs, want 20", len(store.docs))
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %f", res.Throughput())
	}
	var wantAppend int64
	for _, d := range appends {
		wantAppend += int64(len(d))
	}
	if res.AppendBytes != wantAppend {
		t.Fatalf("AppendBytes = %d, want %d", res.AppendBytes, wantAppend)
	}
}

func TestRunMixedEdgeShapes(t *testing.T) {
	store := &memStore{}
	store.Append([]byte("only"))
	// No appends: behaves like a pure read run.
	res := RunMixed(store, store, Sequential(1, 10), nil, 2)
	if res.Reads != 10 || res.Appends != 0 || res.Errors != 0 {
		t.Fatalf("read-only mixed run: %+v", res)
	}
	// No reads: pure append run.
	res = RunMixed(store, store, nil, [][]byte{[]byte("a"), []byte("b")}, 2)
	if res.Reads != 0 || res.Appends != 2 || res.Errors != 0 {
		t.Fatalf("append-only mixed run: %+v", res)
	}
	// Empty everything.
	res = RunMixed(store, store, nil, nil, 2)
	if res.Reads != 0 || res.Appends != 0 {
		t.Fatalf("empty mixed run: %+v", res)
	}
}

// TestHTTPAppendRetriesBackpressure: 429 responses are retried with
// backoff until the server admits the write, honoring Retry-After.
func TestHTTPAppendRetriesBackpressure(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "wal backlog full", http.StatusTooManyRequests)
			return
		}
		fmt.Fprintln(w, `{"id":7}`)
	}))
	defer ts.Close()
	hg := &HTTPGetter{BaseURL: ts.URL, Client: ts.Client()}
	id, err := hg.Append([]byte("persistent"))
	if err != nil {
		t.Fatalf("Append across backpressure: %v", err)
	}
	if id != 7 {
		t.Fatalf("id = %d, want 7", id)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 shed + 1 admitted)", got)
	}
}

// TestHTTPAppendBackpressureExhausted: when every retry is shed the
// error wraps ErrBackpressure so callers can classify the shed write.
func TestHTTPAppendBackpressureExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		http.Error(w, "still full", http.StatusTooManyRequests)
	}))
	defer ts.Close()
	hg := &HTTPGetter{BaseURL: ts.URL, Client: ts.Client(), MaxRetries: 2}
	if _, err := hg.Append([]byte("doomed")); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("exhausted retries = %v, want ErrBackpressure", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}
	// Negative MaxRetries disables retrying entirely.
	hits.Store(0)
	hg.MaxRetries = -1
	if _, err := hg.Append([]byte("one shot")); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("no-retry append = %v, want ErrBackpressure", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// shedAppender fails every append with the admission-control sentinel.
type shedAppender struct{ calls atomic.Int64 }

func (s *shedAppender) Append(doc []byte) (int, error) {
	s.calls.Add(1)
	return 0, fmt.Errorf("over budget: %w", ErrBackpressure)
}

// TestRunMixedCountsBackpressureSeparately: shed appends land in
// Backpressure, not Errors — an overloaded server is not a broken one.
func TestRunMixedCountsBackpressureSeparately(t *testing.T) {
	g := &fakeGetter{docs: fakeDocs(10)}
	a := &shedAppender{}
	res := RunMixed(g, a, Sequential(10, 20), fakeDocs(5), 4)
	if res.Errors != 0 {
		t.Fatalf("shed appends counted as errors: %+v", res)
	}
	if res.Backpressure != 5 {
		t.Fatalf("Backpressure = %d, want 5", res.Backpressure)
	}
	if res.Appends != 5 || res.Reads != 20 {
		t.Fatalf("op counts: %+v", res)
	}
}
