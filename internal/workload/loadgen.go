package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rlz/internal/wal"
)

// ErrBackpressure aliases the store's admission-control sentinel: an
// operation that failed because the server shed it (HTTP 429, or a
// direct collection append over budget) wraps this error. RunMixed
// counts such failures separately from real errors — a load generator
// that reports shed writes as failures can't tell an overloaded server
// from a broken one.
var ErrBackpressure = wal.ErrBackpressure

// Getter is the one-method view of a document server the load generator
// drives: internal/serve.Server, any archive.Reader, and HTTPGetter all
// satisfy it. Implementations must be safe for concurrent use with
// distinct dst buffers.
type Getter interface {
	GetAppend(dst []byte, id int) ([]byte, error)
}

// Appender is the write-side counterpart: a live collection
// (internal/collection) and HTTPGetter (POST /append against rlzd) both
// satisfy it. Implementations must be safe for concurrent use.
type Appender interface {
	Append(doc []byte) (int, error)
}

// Result summarizes one closed-loop load run.
type Result struct {
	Requests int64         // requests issued (== len(ids))
	Errors   int64         // requests that returned an error
	Bytes    int64         // document bytes received
	Elapsed  time.Duration // wall time of the whole run
}

// Throughput returns the request rate in requests per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// Run drives g with a closed-loop workload: `concurrency` workers each
// hold one outstanding request at a time, pulling the next id from the
// shared list until it is exhausted — the access model of a fixed-size
// frontend pool, and the load shape the paper's query-log experiments
// assume. Pair it with QueryLog (zipfian) or Uniform to pick the id
// distribution. Each worker reuses its own buffer, so a Getter's
// GetAppend zero-allocation path is exercised as a real frontend would.
func Run(g Getter, ids []int, concurrency int) Result {
	if concurrency < 1 {
		concurrency = 1
	}
	if concurrency > len(ids) {
		concurrency = len(ids)
	}
	var res Result
	if len(ids) == 0 {
		return res
	}
	var next, errs, bytes atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				var err error
				buf, err = g.GetAppend(buf[:0], ids[i])
				if err != nil {
					errs.Add(1)
					continue
				}
				bytes.Add(int64(len(buf)))
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Requests = int64(len(ids))
	res.Errors = errs.Load()
	res.Bytes = bytes.Load()
	return res
}

// MixedResult summarizes one closed-loop mixed read/append run.
type MixedResult struct {
	Reads        int64         // read operations issued
	Appends      int64         // append operations issued
	Errors       int64         // operations that returned an error
	Backpressure int64         // appends shed by admission control (not in Errors)
	ReadBytes    int64         // document bytes received by reads
	AppendBytes  int64         // document bytes submitted by appends
	Elapsed      time.Duration // wall time of the whole run
}

// Throughput returns the total operation rate in ops per second.
func (r MixedResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Reads+r.Appends) / r.Elapsed.Seconds()
}

// RunMixed drives a live store with a closed-loop mixed workload:
// `concurrency` workers each hold one outstanding operation, pulling the
// next slot from a shared schedule that spreads len(docs) appends evenly
// through len(ids) reads — the ingest-under-traffic shape a live
// collection exists to serve. The schedule is deterministic, so two runs
// over the same inputs issue the same operation sequence (though
// interleaving across workers still varies). Reads use each worker's
// reused buffer (the zero-allocation GetAppend path); failed operations
// count in Errors and the run continues.
func RunMixed(g Getter, a Appender, ids []int, docs [][]byte, concurrency int) MixedResult {
	var res MixedResult
	total := len(ids) + len(docs)
	if total == 0 {
		return res
	}
	if concurrency < 1 {
		concurrency = 1
	}
	if concurrency > total {
		concurrency = total
	}
	// Slot i is an append iff the even-spread quota of appends rises at
	// i; with that, readIdx/appendIdx for any slot follow by prefix
	// counts, kept as the schedule is built.
	isAppend := make([]bool, total)
	opIdx := make([]int, total) // index into ids or docs, per slot
	reads, appends := 0, 0
	for i := 0; i < total; i++ {
		if (i+1)*len(docs)/total != i*len(docs)/total {
			isAppend[i] = true
			opIdx[i] = appends
			appends++
		} else {
			opIdx[i] = reads
			reads++
		}
	}
	var next, errs, shed, nReads, nAppends, readBytes, appendBytes atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if isAppend[i] {
					doc := docs[opIdx[i]]
					nAppends.Add(1)
					if _, err := a.Append(doc); err != nil {
						if errors.Is(err, ErrBackpressure) {
							shed.Add(1)
						} else {
							errs.Add(1)
						}
						continue
					}
					appendBytes.Add(int64(len(doc)))
					continue
				}
				nReads.Add(1)
				var err error
				buf, err = g.GetAppend(buf[:0], ids[opIdx[i]])
				if err != nil {
					errs.Add(1)
					continue
				}
				readBytes.Add(int64(len(buf)))
			}
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Reads = nReads.Load()
	res.Appends = nAppends.Load()
	res.Errors = errs.Load()
	res.Backpressure = shed.Load()
	res.ReadBytes = readBytes.Load()
	res.AppendBytes = appendBytes.Load()
	return res
}

// HTTPGetter adapts a running rlzd daemon to the Getter interface, so the
// same load generator drives the in-process Server and the HTTP serving
// path. Safe for concurrent use (http.Client is).
//
// Appends honor the daemon's admission control: a 429 response is
// retried with capped exponential backoff plus jitter (respecting
// Retry-After when the server sends one); when the retries are
// exhausted the append fails with an error wrapping ErrBackpressure.
type HTTPGetter struct {
	BaseURL string       // e.g. "http://localhost:8087"
	Client  *http.Client // nil means http.DefaultClient
	// MaxRetries caps how many times a 429 append response is retried
	// before giving up. Zero means 4; negative disables retries.
	MaxRetries int
}

// backoffCap bounds one backoff sleep: past it, more waiting only
// stretches the closed loop without letting the server drain any faster.
const backoffCap = 2 * time.Second

// backoffDelay picks the sleep before retry number attempt (0-based):
// the server's Retry-After when given, else an exponential ramp from
// 5ms — both capped and full-jittered (uniform in [d/2, 3d/2)) so a
// fleet of shed writers does not reconverge on the same instant.
func backoffDelay(attempt int, retryAfter string) time.Duration {
	d := 5 * time.Millisecond << min(attempt, 10)
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	if d > backoffCap {
		d = backoffCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// errBodyLimit caps how much of a non-200 response body is captured for
// the error message. Error bodies are read into a throwaway buffer, not
// the caller's reused one: an unbounded read there would permanently
// grow every worker's buffer on the first large error page and embed
// megabytes in the error string.
const errBodyLimit = 1024

// GetAppend fetches GET {BaseURL}/doc/{id}, appending the body to dst.
// On a non-200 response dst is returned unchanged (and ungrown) and the
// error carries at most errBodyLimit bytes of the response body.
func (h *HTTPGetter) GetAppend(dst []byte, id int) ([]byte, error) {
	c := h.Client
	if c == nil {
		c = http.DefaultClient
	}
	resp, err := c.Get(h.BaseURL + "/doc/" + strconv.Itoa(id))
	if err != nil {
		return dst, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
		// Drain a bounded remainder so moderate error bodies reach EOF
		// and the connection stays reusable; a body larger than the
		// drain budget costs one connection rather than unbounded reads.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		return dst, fmt.Errorf("workload: GET /doc/%d: %s: %s", id, resp.Status, body)
	}
	base := len(dst)
	dst, err = readAppend(dst, resp.Body)
	if err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// Append submits POST {BaseURL}/append with doc as the raw body,
// returning the stable id the daemon assigned — the write half of the
// mixed workload against a live rlzd. A 429 response is retried with
// backoff up to MaxRetries times; exhausting them returns an error
// wrapping ErrBackpressure.
func (h *HTTPGetter) Append(doc []byte) (int, error) {
	retries := h.MaxRetries
	if retries == 0 {
		retries = 4
	} else if retries < 0 {
		retries = 0
	}
	for attempt := 0; ; attempt++ {
		id, retryAfter, err := h.appendOnce(doc)
		if err == nil || !errors.Is(err, ErrBackpressure) || attempt >= retries {
			return id, err
		}
		time.Sleep(backoffDelay(attempt, retryAfter))
	}
}

// appendOnce issues one POST /append, returning the Retry-After header
// value alongside a backpressure error so the retry loop can honor it.
func (h *HTTPGetter) appendOnce(doc []byte) (int, string, error) {
	c := h.Client
	if c == nil {
		c = http.DefaultClient
	}
	resp, err := c.Post(h.BaseURL+"/append", "application/octet-stream", bytes.NewReader(doc))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		if resp.StatusCode == http.StatusTooManyRequests {
			return 0, resp.Header.Get("Retry-After"),
				fmt.Errorf("workload: POST /append: %s: %s: %w", resp.Status, body, ErrBackpressure)
		}
		return 0, "", fmt.Errorf("workload: POST /append: %s: %s", resp.Status, body)
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&out); err != nil {
		return 0, "", fmt.Errorf("workload: POST /append response: %w", err)
	}
	return out.ID, "", nil
}

// readAppend is io.ReadAll into an existing buffer: the response body is
// appended to dst without a throwaway intermediate allocation.
func readAppend(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}
