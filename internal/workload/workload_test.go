package workload

import "testing"

func TestSequential(t *testing.T) {
	ids := Sequential(5, 12)
	want := []int{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1}
	if len(ids) != len(want) {
		t.Fatalf("len = %d", len(ids))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
}

func TestSequentialDegenerate(t *testing.T) {
	if Sequential(0, 5) != nil || Sequential(5, 0) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestQueryLogDeterministicAndInRange(t *testing.T) {
	a := QueryLog(1000, 5000, 7)
	b := QueryLog(1000, 5000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 0 || a[i] >= 1000 {
			t.Fatalf("id %d out of range", a[i])
		}
	}
	c := QueryLog(1000, 5000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical logs")
	}
}

func TestQueryLogIsSkewed(t *testing.T) {
	ids := QueryLog(10000, 50000, 1)
	counts := map[int]int{}
	for _, id := range ids {
		counts[id]++
	}
	// Zipf access: far fewer distinct documents than requests, and the
	// hottest document requested many times.
	if len(counts) > len(ids)/2 {
		t.Errorf("%d distinct ids in %d requests; not skewed", len(counts), len(ids))
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 100 {
		t.Errorf("hottest document requested only %d times", max)
	}
}

func TestQueryLogIsNonSequential(t *testing.T) {
	ids := QueryLog(100000, 10000, 2)
	// Consecutive requests should be far apart on average: mean absolute
	// gap for uniform-ish jumps over N docs is ~N/3.
	var totalGap float64
	for i := 1; i < len(ids); i++ {
		g := ids[i] - ids[i-1]
		if g < 0 {
			g = -g
		}
		totalGap += float64(g)
	}
	if mean := totalGap / float64(len(ids)-1); mean < 1000 {
		t.Errorf("mean gap %f; requests look sequential", mean)
	}
}

func TestQueryLogPopularityNotPositional(t *testing.T) {
	// The most popular document must not systematically be document 0:
	// popularity is decoupled from position by the permutation.
	hot := make([]int, 0, 5)
	for seed := int64(0); seed < 5; seed++ {
		ids := QueryLog(10000, 20000, seed)
		counts := map[int]int{}
		for _, id := range ids {
			counts[id]++
		}
		best, bestN := 0, 0
		for id, n := range counts {
			if n > bestN {
				best, bestN = id, n
			}
		}
		hot = append(hot, best)
	}
	allZero := true
	for _, h := range hot {
		if h != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("hottest document is always id 0; permutation not applied")
	}
}

func TestUniform(t *testing.T) {
	a := Uniform(50, 1000, 3)
	b := Uniform(50, 1000, 3)
	seen := map[int]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 0 || a[i] >= 50 {
			t.Fatalf("id %d out of range", a[i])
		}
		seen[a[i]] = true
	}
	if len(seen) < 40 {
		t.Errorf("only %d/50 ids seen in 1000 draws", len(seen))
	}
}
