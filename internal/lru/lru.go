// Package lru implements the goroutine-safe byte-slice LRU cache shared
// by this repository's read paths: the blockstore's decompressed-block
// cache and the serving layer's hot-document cache (internal/serve) are
// both instances of it.
//
// The cache owns its bytes. Put copies the value into cache-owned
// storage, so later mutation of the caller's slice cannot corrupt cached
// entries; Get returns a full slice expression (len == cap) over that
// storage, so a caller that appends to a hit forces a reallocation
// instead of scribbling over the cache. Callers must still treat the
// returned bytes as read-only — indexed writes are not (and cannot be)
// intercepted.
package lru

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a fixed-capacity least-recently-used map from uint64 keys to
// immutable byte strings. All methods are safe for concurrent use. The
// zero value is not usable; call New.
type Cache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu       sync.Mutex
	capacity int                      // immutable after New; read lock-free by Capacity
	order    *list.List               // guarded by mu; front = most recent; values are *entry
	entries  map[uint64]*list.Element // guarded by mu
}

type entry struct {
	key  uint64
	data []byte
}

// New returns an empty cache holding at most capacity entries.
// A capacity below 1 is treated as 1.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[uint64]*list.Element, capacity),
	}
}

// Get returns the cached bytes for key, or nil on a miss. The returned
// slice is cache-owned and read-only; its capacity is clamped to its
// length so appending reallocates rather than mutating the cache.
//
//rlz:hotpath
func (c *Cache) Get(key uint64) []byte {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	c.order.MoveToFront(el)
	data := el.Value.(*entry).data
	c.mu.Unlock()
	c.hits.Add(1)
	return data[:len(data):len(data)]
}

// Put stores a copy of data under key, evicting the least recently used
// entries while over capacity. The caller keeps ownership of data and may
// mutate it freely afterwards.
func (c *Cache) Put(key uint64, data []byte) {
	owned := make([]byte, len(data))
	copy(owned, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry).data = owned
		return
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, data: owned})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
	}
}

// Remove drops the entry for key, reporting whether one was cached. The
// serving layer uses it to invalidate a single document (e.g. after a
// delete) without discarding the rest of a hot cache.
func (c *Cache) Remove(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.entries, key)
	return true
}

// Purge drops every entry. The serving layer calls it when its cache
// epoch space wraps, so no key from an ancient epoch can alias a
// current one.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.entries)
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Capacity reports the maximum number of entries the cache holds.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
