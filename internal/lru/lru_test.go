package lru

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(2)
	if got := c.Get(1); got != nil {
		t.Fatalf("Get on empty cache = %q, want nil", got)
	}
	c.Put(1, []byte("one"))
	c.Put(2, []byte("two"))
	if got := c.Get(1); !bytes.Equal(got, []byte("one")) {
		t.Fatalf("Get(1) = %q, want %q", got, "one")
	}
	if got := c.Get(2); !bytes.Equal(got, []byte("two")) {
		t.Fatalf("Get(2) = %q, want %q", got, "two")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictionIsLRU(t *testing.T) {
	c := New(2)
	c.Put(1, []byte("one"))
	c.Put(2, []byte("two"))
	c.Get(1) // promote 1; 2 is now LRU
	c.Put(3, []byte("three"))
	if got := c.Get(2); got != nil {
		t.Fatalf("entry 2 should have been evicted, got %q", got)
	}
	if got := c.Get(1); !bytes.Equal(got, []byte("one")) {
		t.Fatalf("entry 1 should have survived, got %q", got)
	}
	if got := c.Get(3); !bytes.Equal(got, []byte("three")) {
		t.Fatalf("entry 3 should be cached, got %q", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestPutUpdatesExistingKey(t *testing.T) {
	c := New(2)
	c.Put(1, []byte("old"))
	c.Put(1, []byte("new"))
	if got := c.Get(1); !bytes.Equal(got, []byte("new")) {
		t.Fatalf("Get(1) = %q, want %q", got, "new")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put, want 1", c.Len())
	}
}

// TestPutCopiesCallerSlice is the aliasing regression test for the put
// side: a caller that reuses its buffer after Put must not corrupt the
// cached entry.
func TestPutCopiesCallerSlice(t *testing.T) {
	c := New(4)
	buf := []byte("pristine")
	c.Put(7, buf)
	copy(buf, "clobber!")
	buf = append(buf[:0], "rewritten entirely"...)
	if got := c.Get(7); !bytes.Equal(got, []byte("pristine")) {
		t.Fatalf("cached entry aliased caller buffer: got %q, want %q", got, "pristine")
	}
}

// TestGetIsAppendProof is the aliasing regression test for the get side:
// appending to a cache hit must reallocate, never grow into cache-owned
// storage shared with adjacent state.
func TestGetIsAppendProof(t *testing.T) {
	c := New(4)
	c.Put(7, []byte("doc"))
	got := c.Get(7)
	if cap(got) != len(got) {
		t.Fatalf("Get returned cap %d > len %d; append would write into the cache", cap(got), len(got))
	}
	_ = append(got, " tail"...)
	if again := c.Get(7); !bytes.Equal(again, []byte("doc")) {
		t.Fatalf("append to a hit mutated the cache: got %q", again)
	}
}

func TestStats(t *testing.T) {
	c := New(2)
	c.Get(1)
	c.Put(1, []byte("x"))
	c.Get(1)
	c.Get(2)
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("Stats = (%d hits, %d misses), want (1, 2)", hits, misses)
	}
}

func TestTinyCapacity(t *testing.T) {
	c := New(0) // clamped to 1
	if c.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want 1", c.Capacity())
	}
	c.Put(1, []byte("a"))
	c.Put(2, []byte("b"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := uint64(i % 16)
				want := []byte(fmt.Sprintf("value-%d", key))
				if got := c.Get(key); got != nil && !bytes.Equal(got, want) {
					t.Errorf("Get(%d) = %q, want %q", key, got, want)
					return
				}
				c.Put(key, want)
			}
		}(g)
	}
	wg.Wait()
}
