// Package search provides streaming substring search (Knuth-Morris-Pratt)
// used to grep compressed archives: documents are decoded one at a time
// and scanned without any per-document index.
package search

// Matcher is a compiled KMP pattern. It is immutable after compilation
// and safe for concurrent use.
type Matcher struct {
	pattern []byte
	fail    []int
}

// Compile builds the failure function for pattern. An empty pattern is
// legal and matches at every position.
func Compile(pattern []byte) *Matcher {
	m := &Matcher{pattern: append([]byte(nil), pattern...), fail: make([]int, len(pattern))}
	k := 0
	for i := 1; i < len(pattern); i++ {
		for k > 0 && pattern[k] != pattern[i] {
			k = m.fail[k-1]
		}
		if pattern[k] == pattern[i] {
			k++
		}
		m.fail[i] = k
	}
	return m
}

// Pattern returns the compiled pattern bytes.
func (m *Matcher) Pattern() []byte { return m.pattern }

// FindAll returns the start offsets of every (possibly overlapping)
// occurrence of the pattern in text.
func (m *Matcher) FindAll(text []byte) []int {
	var out []int
	m.Scan(text, func(off int) bool {
		out = append(out, off)
		return true
	})
	return out
}

// Scan streams occurrence offsets to fn, stopping early if fn returns
// false. An empty pattern yields a match at every offset including
// len(text).
func (m *Matcher) Scan(text []byte, fn func(offset int) bool) {
	if len(m.pattern) == 0 {
		for i := 0; i <= len(text); i++ {
			if !fn(i) {
				return
			}
		}
		return
	}
	k := 0
	for i := 0; i < len(text); i++ {
		for k > 0 && m.pattern[k] != text[i] {
			k = m.fail[k-1]
		}
		if m.pattern[k] == text[i] {
			k++
		}
		if k == len(m.pattern) {
			if !fn(i - k + 1) {
				return
			}
			k = m.fail[k-1]
		}
	}
}

// Count returns the number of (possibly overlapping) occurrences.
func (m *Matcher) Count(text []byte) int {
	n := 0
	m.Scan(text, func(int) bool { n++; return true })
	return n
}

// Contains reports whether the pattern occurs in text.
func (m *Matcher) Contains(text []byte) bool {
	found := false
	m.Scan(text, func(int) bool { found = true; return false })
	return found
}
