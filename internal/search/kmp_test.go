package search

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFindAllKnown(t *testing.T) {
	cases := []struct {
		text, pat string
		want      []int
	}{
		{"abcabcabc", "abc", []int{0, 3, 6}},
		{"aaaa", "aa", []int{0, 1, 2}}, // overlapping
		{"abcdef", "xyz", nil},
		{"abc", "abc", []int{0}},
		{"abc", "abcd", nil},
		{"", "a", nil},
		{"mississippi", "issi", []int{1, 4}},
		{"ababab", "abab", []int{0, 2}},
	}
	for _, c := range cases {
		got := Compile([]byte(c.pat)).FindAll([]byte(c.text))
		if len(got) != len(c.want) {
			t.Errorf("FindAll(%q, %q) = %v, want %v", c.text, c.pat, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("FindAll(%q, %q) = %v, want %v", c.text, c.pat, got, c.want)
				break
			}
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	m := Compile(nil)
	got := m.FindAll([]byte("ab"))
	if len(got) != 3 { // offsets 0, 1, 2
		t.Errorf("empty pattern matches = %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	m := Compile([]byte("a"))
	calls := 0
	m.Scan([]byte("aaaaaa"), func(int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("scan visited %d matches, want 3", calls)
	}
}

func TestCountAndContains(t *testing.T) {
	m := Compile([]byte("na"))
	if m.Count([]byte("banana")) != 2 {
		t.Errorf("Count = %d", m.Count([]byte("banana")))
	}
	if !m.Contains([]byte("banana")) || m.Contains([]byte("apple")) {
		t.Error("Contains wrong")
	}
}

func TestMatchesNaiveQuick(t *testing.T) {
	f := func(text, pat []byte) bool {
		if len(pat) == 0 || len(pat) > 6 {
			return true
		}
		if len(text) > 2000 {
			text = text[:2000]
		}
		got := Compile(pat).FindAll(text)
		var want []int
		for i := 0; i+len(pat) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(pat)], pat) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPatternIsCopied(t *testing.T) {
	buf := []byte("abc")
	m := Compile(buf)
	buf[0] = 'x'
	if string(m.Pattern()) != "abc" {
		t.Error("Compile aliased the caller's buffer")
	}
}
