package corpus

import (
	"bytes"
	"testing"
)

func TestGenerateGenomesDeterministic(t *testing.T) {
	a := GenerateGenomes(Genomes, 5, 10000, 3)
	b := GenerateGenomes(Genomes, 5, 10000, 3)
	if a.Len() != 5 || b.Len() != 5 {
		t.Fatalf("lengths: %d, %d", a.Len(), b.Len())
	}
	for i := range a.Docs {
		if !bytes.Equal(a.Docs[i].Body, b.Docs[i].Body) {
			t.Fatalf("doc %d differs across runs", i)
		}
	}
}

func TestGenomesAreDNAOfRoughlyRightSize(t *testing.T) {
	c := GenerateGenomes(Genomes, 8, 20000, 4)
	for i, d := range c.Docs {
		if len(d.Body) < 19000 || len(d.Body) > 21000 {
			t.Errorf("doc %d length %d far from 20000", i, len(d.Body))
		}
		for _, b := range d.Body {
			if b != 'A' && b != 'C' && b != 'G' && b != 'T' {
				t.Fatalf("doc %d contains non-base %q", i, b)
			}
		}
	}
}

func TestGenomesShareMostContent(t *testing.T) {
	// Individuals differ by ~0.1% SNVs: any two documents must agree on
	// the overwhelming majority of a long aligned prefix window.
	c := GenerateGenomes(GenomeProfile{Name: "t", SNVRate: 0.001}, 2, 50000, 5)
	a, b := c.Docs[0].Body, c.Docs[1].Body
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	same := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	if frac := float64(same) / float64(n); frac < 0.99 {
		t.Errorf("individuals agree on only %.3f of bases", frac)
	}
}

func TestGenomesMutationsPresent(t *testing.T) {
	c := GenerateGenomes(Genomes, 2, 100000, 6)
	if bytes.Equal(c.Docs[0].Body, c.Docs[1].Body) {
		t.Error("two individuals are identical; mutations never applied")
	}
}
