// Package corpus generates synthetic web collections with the statistical
// properties RLZ exploits, standing in for the paper's test collections
// (GOV2, a 426 GB web crawl, and a 256 GB English Wikipedia snapshot —
// neither of which ships with a reproduction).
//
// The generator reproduces, at laptop scale, the structure that drives the
// paper's results:
//
//   - global boilerplate: markup shared by every page of a crawl;
//   - per-site templates: headers, navigation and footers shared by all
//     pages of one host — redundancy that is *non-local* in crawl order,
//     which is precisely what block-oriented compressors miss and what
//     RLZ's sampled dictionary captures;
//   - Zipf-distributed body text over a fixed vocabulary;
//   - mirrored hosts serving identical content under different URLs
//     (the paper's §3.5 argument for why URL sorting is fragile);
//   - URL keys, so collections can be presented in crawl order or
//     URL-sorted order as in Tables 4–7.
//
// Generation is deterministic in the seed.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"rlz/internal/warc"
)

// Document is one web page: a URL key and its body.
type Document struct {
	URL  string
	Body []byte
}

// Collection is an ordered list of documents.
type Collection struct {
	Docs []Document
}

// Profile shapes a synthetic collection. The two predefined profiles
// correspond to the paper's two test collections.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// AvgDocSize is the mean document size in bytes (GOV2: ~18 KB,
	// Wikipedia: ~45 KB; scaled profiles shrink this).
	AvgDocSize int
	// NumSites is the number of distinct hosts contributing pages.
	NumSites int
	// MirrorEvery makes every k-th site a byte-identical mirror of an
	// earlier site under a different host name; 0 disables mirroring.
	MirrorEvery int
	// VocabSize is the number of distinct body-text words.
	VocabSize int
	// ZipfS is the Zipf skew parameter for word frequencies (>1).
	ZipfS float64
	// TemplateParagraphs is how many boilerplate phrases each site's
	// template cycles through; larger values mean more per-site (global,
	// in crawl order) redundancy.
	TemplateParagraphs int
}

// Gov is a GOV2-like profile: smaller, markup-heavy pages across many
// hosts — the web-crawl shape of the paper's first collection.
var Gov = Profile{
	Name:               "gov",
	AvgDocSize:         16 << 10,
	NumSites:           30,
	MirrorEvery:        7,
	VocabSize:          20000,
	ZipfS:              1.3,
	TemplateParagraphs: 12,
}

// Wiki is a Wikipedia-like profile: fewer hosts (one project, many
// namespaces), larger pages, heavier shared structure (infoboxes,
// citation templates) — the shape of the paper's second collection.
var Wiki = Profile{
	Name:               "wiki",
	AvgDocSize:         36 << 10,
	NumSites:           12,
	MirrorEvery:        0,
	VocabSize:          40000,
	ZipfS:              1.2,
	TemplateParagraphs: 24,
}

// Generate builds a collection of approximately totalBytes in crawl order:
// sites are visited round-robin the way a breadth-first crawler's frontier
// interleaves hosts, so pages of one site are spread across the collection.
func Generate(p Profile, totalBytes int, seed int64) *Collection {
	rng := rand.New(rand.NewSource(seed))
	vocab := makeVocabulary(p.VocabSize, rng)
	zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(p.VocabSize-1))

	numSites := p.NumSites
	if numSites < 1 {
		numSites = 1
	}
	sites := make([]*site, numSites)
	for i := range sites {
		if p.MirrorEvery > 0 && i > 0 && i%p.MirrorEvery == 0 {
			// A mirror: identical content under a different host. The
			// previous site is never itself a mirror (mirrors sit at
			// multiples of MirrorEvery), so its page bodies are reused.
			sites[i] = &site{host: hostName(i, rng), mirrorOf: i - 1}
			continue
		}
		sites[i] = newSite(i, p, vocab, rng)
	}

	// Round-robin pages across sites until the byte budget is spent.
	c := &Collection{}
	written := 0
	page := 0
	for written < totalBytes {
		for _, s := range sites {
			if written >= totalBytes {
				break
			}
			var doc Document
			if s.mirrorOf >= 0 {
				src := sites[s.mirrorOf]
				if page >= len(src.pages) {
					continue // mirror has nothing new to copy yet
				}
				doc = Document{
					URL:  fmt.Sprintf("http://%s/page/%05d.html", s.host, page),
					Body: src.pages[page],
				}
			} else {
				body := s.renderPage(page, p, vocab, zipf, rng)
				s.pages = append(s.pages, body)
				doc = Document{
					URL:  fmt.Sprintf("http://%s/page/%05d.html", s.host, page),
					Body: body,
				}
			}
			c.Docs = append(c.Docs, doc)
			written += len(doc.Body)
		}
		page++
	}
	return c
}

// site carries one host's template state.
type site struct {
	host     string
	header   string
	footer   string
	phrases  []string
	pages    [][]byte
	mirrorOf int // >= 0 marks a mirror of sites[mirrorOf]
}

func newSite(i int, p Profile, vocab []string, rng *rand.Rand) *site {
	s := &site{host: hostName(i, rng), mirrorOf: -1}
	var hb strings.Builder
	fmt.Fprintf(&hb, "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"+
		"<meta charset=\"utf-8\">\n<link rel=\"stylesheet\" href=\"/static/site-%d.css\">\n"+
		"<script src=\"/static/common.js\"></script>\n</head>\n<body>\n"+
		"<div id=\"banner\"><h1>%s</h1>\n<ul class=\"nav\">", i, s.host)
	for j := 0; j < 8; j++ {
		fmt.Fprintf(&hb, "<li><a href=\"/section/%d\">%s</a></li>", j, vocab[rng.Intn(200)])
	}
	hb.WriteString("</ul></div>\n<div id=\"content\">\n")
	s.header = hb.String()
	s.footer = fmt.Sprintf("</div>\n<div id=\"footer\">Copyright %s. All rights reserved. "+
		"Privacy policy | Terms of use | Accessibility | Contact</div>\n</body>\n</html>\n", s.host)
	s.phrases = make([]string, p.TemplateParagraphs)
	for j := range s.phrases {
		var pb strings.Builder
		pb.WriteString("<p class=\"boiler\">")
		for w := 0; w < 30+rng.Intn(30); w++ {
			pb.WriteString(vocab[rng.Intn(500)])
			pb.WriteByte(' ')
		}
		pb.WriteString("</p>\n")
		s.phrases[j] = pb.String()
	}
	return s
}

func (s *site) renderPage(page int, p Profile, vocab []string, zipf *rand.Zipf, rng *rand.Rand) []byte {
	target := p.AvgDocSize/2 + rng.Intn(p.AvgDocSize) // uniform in [0.5, 1.5) x avg
	var b strings.Builder
	b.Grow(target + 512)
	b.WriteString(s.header)
	fmt.Fprintf(&b, "<h2>Page %d</h2>\n", page)
	// Alternate template boilerplate with fresh Zipf text until the size
	// target is met; roughly half of each page is template material,
	// matching the heavy boilerplate fraction of real crawls.
	i := 0
	for b.Len() < target {
		b.WriteString(s.phrases[(page+i)%len(s.phrases)])
		b.WriteString(s.phrases[(page+i+3)%len(s.phrases)])
		b.WriteString("<p>")
		for w := 0; w < 20+rng.Intn(30); w++ {
			b.WriteString(vocab[zipf.Uint64()])
			b.WriteByte(' ')
		}
		b.WriteString("</p>\n")
		i++
	}
	b.WriteString(s.footer)
	return []byte(b.String())
}

func hostName(i int, rng *rand.Rand) string {
	tlds := []string{"gov", "org", "edu", "com", "net"}
	return fmt.Sprintf("www.%s%03d.%s", syllables(rng, 2+rng.Intn(2)), i, tlds[i%len(tlds)])
}

// makeVocabulary builds deterministic pseudo-English words.
func makeVocabulary(n int, rng *rand.Rand) []string {
	if n < 1 {
		n = 1
	}
	vocab := make([]string, n)
	seen := make(map[string]bool, n)
	for i := range vocab {
		for {
			w := syllables(rng, 1+rng.Intn(3))
			if !seen[w] {
				seen[w] = true
				vocab[i] = w
				break
			}
		}
	}
	return vocab
}

func syllables(rng *rand.Rand, n int) string {
	onsets := []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "st", "tr", "ch"}
	nuclei := []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"}
	codas := []string{"", "n", "r", "s", "t", "l", "nd", "st"}
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(onsets[rng.Intn(len(onsets))])
		b.WriteString(nuclei[rng.Intn(len(nuclei))])
		b.WriteString(codas[rng.Intn(len(codas))])
	}
	return b.String()
}

// SortByURL reorders the collection into URL order, the arrangement
// Ferragina & Manzini showed helps block compressors (§3.5). The sort is
// stable so equal URLs keep their crawl order.
func (c *Collection) SortByURL() {
	sort.SliceStable(c.Docs, func(i, j int) bool {
		return c.Docs[i].URL < c.Docs[j].URL
	})
}

// Clone returns a deep-enough copy sharing document bodies (bodies are
// never mutated) so one generated collection can be used in both orders.
func (c *Collection) Clone() *Collection {
	docs := make([]Document, len(c.Docs))
	copy(docs, c.Docs)
	return &Collection{Docs: docs}
}

// Bytes concatenates all document bodies in collection order — the "single
// string" view of §3.3 that dictionary sampling operates on.
func (c *Collection) Bytes() []byte {
	out := make([]byte, 0, c.TotalSize())
	for _, d := range c.Docs {
		out = append(out, d.Body...)
	}
	return out
}

// TotalSize returns the summed body size in bytes.
func (c *Collection) TotalSize() int64 {
	var n int64
	for _, d := range c.Docs {
		n += int64(len(d.Body))
	}
	return n
}

// Len returns the number of documents.
func (c *Collection) Len() int { return len(c.Docs) }

// AvgDocSize returns the mean document size in bytes.
func (c *Collection) AvgDocSize() float64 {
	if len(c.Docs) == 0 {
		return 0
	}
	return float64(c.TotalSize()) / float64(len(c.Docs))
}

// Records converts the collection to warc records for serialization.
func (c *Collection) Records() []warc.Record {
	recs := make([]warc.Record, len(c.Docs))
	for i, d := range c.Docs {
		recs[i] = warc.Record{URL: d.URL, Body: d.Body}
	}
	return recs
}

// FromRecords builds a collection from warc records (bodies are shared,
// not copied).
func FromRecords(recs []warc.Record) *Collection {
	c := &Collection{Docs: make([]Document, len(recs))}
	for i, r := range recs {
		c.Docs[i] = Document{URL: r.URL, Body: r.Body}
	}
	return c
}
