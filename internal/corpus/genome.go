package corpus

import (
	"fmt"
	"math/rand"
)

// Genome collections are RLZ's original domain: the technique the paper
// builds on was introduced for storing thousands of individual genomes
// against a reference (Kuruppu, Puglisi & Zobel, SPIRE 2010 — the paper's
// citation [20]). Individuals differ from the reference by a sprinkling
// of single-nucleotide variants and short indels, so a dictionary that
// contains (samples of) one reference sequence makes every other
// individual compress to almost nothing.
//
// GenerateGenomes builds such a collection: one synthetic reference and
// numDocs "individuals", each a mutated copy. Mutation rates mirror the
// human-scale numbers (~0.1 % SNVs, rarer short indels).

// GenomeProfile shapes a synthetic genome collection.
type GenomeProfile struct {
	// Name labels the profile in reports.
	Name string
	// SNVRate is the per-base probability of a substitution.
	SNVRate float64
	// IndelRate is the per-base probability of starting a short indel.
	IndelRate float64
	// MaxIndel is the maximum indel length in bases.
	MaxIndel int
}

// Genomes is the default genome profile: human-like variation rates.
var Genomes = GenomeProfile{
	Name:      "genomes",
	SNVRate:   0.001,
	IndelRate: 0.0001,
	MaxIndel:  8,
}

// GenerateGenomes builds a collection of numDocs individual sequences of
// approximately seqLen bases each, all derived from one random reference.
// Document URLs are synthetic accession IDs. Deterministic in seed.
func GenerateGenomes(p GenomeProfile, numDocs, seqLen int, seed int64) *Collection {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	ref := make([]byte, seqLen)
	for i := range ref {
		ref[i] = bases[rng.Intn(4)]
	}
	c := &Collection{Docs: make([]Document, numDocs)}
	for d := 0; d < numDocs; d++ {
		seq := make([]byte, 0, seqLen+seqLen/64)
		for i := 0; i < len(ref); i++ {
			r := rng.Float64()
			switch {
			case r < p.IndelRate/2 && p.MaxIndel > 0:
				// Deletion: skip up to MaxIndel reference bases.
				i += rng.Intn(p.MaxIndel)
			case r < p.IndelRate && p.MaxIndel > 0:
				// Insertion of random bases, then the reference base.
				for k, n := 0, 1+rng.Intn(p.MaxIndel); k < n; k++ {
					seq = append(seq, bases[rng.Intn(4)])
				}
				seq = append(seq, ref[i])
			case r < p.IndelRate+p.SNVRate:
				// Substitution with a different base.
				b := bases[rng.Intn(4)]
				for b == ref[i] {
					b = bases[rng.Intn(4)]
				}
				seq = append(seq, b)
			default:
				seq = append(seq, ref[i])
			}
		}
		c.Docs[d] = Document{
			URL:  fmt.Sprintf("genome://sample/%s-%05d", p.Name, d),
			Body: seq,
		}
	}
	return c
}
