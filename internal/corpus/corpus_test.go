package corpus

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Gov, 1<<20, 42)
	b := Generate(Gov, 1<<20, 42)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Docs {
		if a.Docs[i].URL != b.Docs[i].URL || !bytes.Equal(a.Docs[i].Body, b.Docs[i].Body) {
			t.Fatalf("document %d differs between runs", i)
		}
	}
	c := Generate(Gov, 1<<20, 43)
	if c.Len() == a.Len() && bytes.Equal(c.Docs[0].Body, a.Docs[0].Body) {
		t.Error("different seeds produced identical collections")
	}
}

func TestGenerateSizeTarget(t *testing.T) {
	for _, target := range []int{1 << 18, 1 << 20, 4 << 20} {
		c := Generate(Gov, target, 1)
		got := int(c.TotalSize())
		if got < target || got > target+2*Gov.AvgDocSize*Gov.NumSites {
			t.Errorf("target %d: generated %d bytes", target, got)
		}
	}
}

func TestProfilesDiffer(t *testing.T) {
	g := Generate(Gov, 1<<20, 1)
	w := Generate(Wiki, 1<<20, 1)
	if g.AvgDocSize() >= w.AvgDocSize() {
		t.Errorf("gov avg doc %f should be smaller than wiki %f", g.AvgDocSize(), w.AvgDocSize())
	}
}

func TestDocumentsLookLikeWebPages(t *testing.T) {
	c := Generate(Gov, 1<<19, 2)
	for i, d := range c.Docs[:10] {
		body := string(d.Body)
		for _, frag := range []string{"<!DOCTYPE html>", "<body>", "</html>", "<div id=\"content\">"} {
			if !strings.Contains(body, frag) {
				t.Errorf("doc %d missing %q", i, frag)
			}
		}
		if !strings.HasPrefix(d.URL, "http://www.") {
			t.Errorf("doc %d URL = %q", i, d.URL)
		}
	}
}

func TestCrawlOrderInterleavesSites(t *testing.T) {
	c := Generate(Gov, 2<<20, 3)
	host := func(u string) string {
		rest := strings.TrimPrefix(u, "http://")
		return rest[:strings.IndexByte(rest, '/')]
	}
	// In crawl order, consecutive documents should come from different
	// hosts almost always (round-robin frontier).
	same := 0
	for i := 1; i < c.Len(); i++ {
		if host(c.Docs[i].URL) == host(c.Docs[i-1].URL) {
			same++
		}
	}
	if same > c.Len()/10 {
		t.Errorf("%d/%d consecutive same-host pairs in crawl order", same, c.Len())
	}
}

func TestSortByURLGroupsSites(t *testing.T) {
	c := Generate(Gov, 2<<20, 3)
	c.SortByURL()
	urls := make([]string, c.Len())
	for i, d := range c.Docs {
		urls[i] = d.URL
	}
	if !sort.StringsAreSorted(urls) {
		t.Fatal("not URL-sorted")
	}
}

func TestSortPreservesMultisetOfDocs(t *testing.T) {
	c := Generate(Gov, 1<<20, 4)
	orig := c.Clone()
	c.SortByURL()
	if c.TotalSize() != orig.TotalSize() || c.Len() != orig.Len() {
		t.Fatal("sort changed the collection contents")
	}
	seen := map[string]int{}
	for _, d := range orig.Docs {
		seen[d.URL]++
	}
	for _, d := range c.Docs {
		seen[d.URL]--
	}
	for u, n := range seen {
		if n != 0 {
			t.Fatalf("URL %q count off by %d after sort", u, n)
		}
	}
}

func TestMirrorsExist(t *testing.T) {
	c := Generate(Gov, 4<<20, 5)
	// Find two documents with identical bodies but different URLs.
	byHash := map[string][]int{}
	for i, d := range c.Docs {
		byHash[string(d.Body)] = append(byHash[string(d.Body)], i)
	}
	found := false
	for _, ids := range byHash {
		if len(ids) >= 2 && c.Docs[ids[0]].URL != c.Docs[ids[1]].URL {
			found = true
			break
		}
	}
	if !found {
		t.Error("no mirrored content found in gov profile")
	}
}

func TestGlobalRedundancyAcrossCollection(t *testing.T) {
	// A substring from an early document's site template must reappear
	// much later in the collection (the same site's later pages) — the
	// non-local redundancy RLZ exploits.
	c := Generate(Gov, 2<<20, 6)
	first := c.Docs[0].Body
	probe := first[bytes.Index(first, []byte("<div id=\"banner\">")) : bytes.Index(first, []byte("<div id=\"banner\">"))+60]
	lastThird := c.Docs[2*c.Len()/3:]
	found := false
	for _, d := range lastThird {
		if bytes.Contains(d.Body, probe) {
			found = true
			break
		}
	}
	if !found {
		t.Error("site template from document 0 never recurs in the final third of the crawl")
	}
}

func TestBytesConcatenation(t *testing.T) {
	c := Generate(Gov, 1<<18, 7)
	all := c.Bytes()
	if int64(len(all)) != c.TotalSize() {
		t.Fatalf("Bytes length %d != TotalSize %d", len(all), c.TotalSize())
	}
	if !bytes.HasPrefix(all, c.Docs[0].Body) {
		t.Error("concatenation does not start with document 0")
	}
	last := c.Docs[c.Len()-1].Body
	if !bytes.HasSuffix(all, last) {
		t.Error("concatenation does not end with the last document")
	}
}

func TestAvgDocSizeEmptyCollection(t *testing.T) {
	var c Collection
	if c.AvgDocSize() != 0 {
		t.Error("empty collection average should be 0")
	}
}
