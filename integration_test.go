package bench

import (
	"bytes"
	"path/filepath"
	"testing"

	"rlz/internal/archive"
	"rlz/internal/corpus"
	"rlz/internal/rlz"
	"rlz/internal/store"
	"rlz/internal/warc"
	"rlz/internal/workload"
)

// End-to-end pipeline tests: every subsystem composed the way a real
// deployment would use them.

// TestPipelineCrawlToArchive runs generate -> warc -> RLZ archive ->
// random access, verifying bytes at every stage.
func TestPipelineCrawlToArchive(t *testing.T) {
	coll := corpus.Generate(corpus.Gov, 2<<20, 77)

	// Serialize and re-load the collection through the warc container.
	path := filepath.Join(t.TempDir(), "crawl.warc")
	if err := warc.WriteFile(path, coll.Records()); err != nil {
		t.Fatal(err)
	}
	recs, err := warc.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := corpus.FromRecords(recs)
	if reloaded.Len() != coll.Len() || reloaded.TotalSize() != coll.TotalSize() {
		t.Fatalf("warc round trip changed the collection: %d/%d docs, %d/%d bytes",
			reloaded.Len(), coll.Len(), reloaded.TotalSize(), coll.TotalSize())
	}

	// Archive with a 1% dictionary, then verify every document.
	dict := rlz.SampleEven(reloaded.Bytes(), int(reloaded.TotalSize())/100, 1<<10)
	var buf bytes.Buffer
	w, err := store.NewWriter(&buf, dict, rlz.CodecZV)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range reloaded.Docs {
		if _, err := w.Append(d.Body); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range coll.Docs {
		got, err := r.Get(i)
		if err != nil || !bytes.Equal(got, d.Body) {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
	if int64(buf.Len()) > coll.TotalSize()/3 {
		t.Errorf("archive %d bytes for %d raw; expected strong compression", buf.Len(), coll.TotalSize())
	}
}

// TestPipelineParallelEqualsSequential checks the archive layer's
// parallel builder against the backend's sequential writer on a full
// synthetic crawl.
func TestPipelineParallelEqualsSequential(t *testing.T) {
	coll := corpus.Generate(corpus.Wiki, 1<<20, 78)
	docs := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		docs[i] = d.Body
	}
	dict := rlz.SampleEven(coll.Bytes(), 32<<10, 512)

	var seq bytes.Buffer
	w, err := store.NewWriter(&seq, dict, rlz.CodecZZ)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := w.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var par bytes.Buffer
	opts := archive.Options{Backend: archive.RLZ, Dict: dict, Codec: rlz.CodecZZ, Workers: 8}
	if _, err := archive.Build(&par, archive.FromBodies(docs), opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("parallel archive differs from sequential")
	}
}

// TestPipelineSearchAndSnippets exercises grep + range decoding over a
// compressed crawl, cross-checking against the plaintext.
func TestPipelineSearchAndSnippets(t *testing.T) {
	coll := corpus.Generate(corpus.Gov, 1<<20, 79)
	dict := rlz.SampleEven(coll.Bytes(), 16<<10, 512)
	var buf bytes.Buffer
	w, err := store.NewWriter(&buf, dict, rlz.CodecUV)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range coll.Docs {
		if _, err := w.Append(d.Body); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	pattern := []byte("<div id=\"footer\">")
	matches, err := r.FindAll(pattern, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The footer template appears in every generated page.
	if len(matches) < coll.Len() {
		t.Fatalf("found %d matches in %d docs", len(matches), coll.Len())
	}
	// Every reported match must actually be there, and the range decode
	// around it must agree with the plaintext.
	for _, m := range matches[:50] {
		want := coll.Docs[m.Doc].Body
		if !bytes.HasPrefix(want[m.Offset:], pattern) {
			t.Fatalf("match %v does not point at the pattern", m)
		}
		window, err := r.GetRange(m.Doc, m.Offset, m.Offset+len(pattern))
		if err != nil || !bytes.Equal(window, pattern) {
			t.Fatalf("GetRange around %v = %q, %v", m, window, err)
		}
	}
}

// TestPipelineRetrievalBeatsBaseline replays the paper's headline
// comparison end to end at test scale: same documents, same query-log,
// RLZ must beat the 256 KB-blocked zlib baseline on decode CPU while
// compressing at least comparably.
func TestPipelineRetrievalBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("scale comparison")
	}
	coll := corpus.Generate(corpus.Gov, 4<<20, 80)
	raw := coll.TotalSize()
	docs := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		docs[i] = d.Body
	}

	dict := rlz.SampleEven(coll.Bytes(), int(raw)/50, 1<<10)
	var rlzBuf bytes.Buffer
	if _, err := archive.Build(&rlzBuf, archive.FromBodies(docs),
		archive.Options{Backend: archive.RLZ, Dict: dict, Codec: rlz.CodecZV}); err != nil {
		t.Fatal(err)
	}
	var blkBuf bytes.Buffer
	if _, err := archive.Build(&blkBuf, archive.FromBodies(docs),
		archive.Options{Backend: archive.Block, BlockSize: 256 << 10}); err != nil {
		t.Fatal(err)
	}

	rr, err := archive.OpenBytes(rlzBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	br, err := archive.OpenBytes(blkBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	ids := workload.QueryLog(coll.Len(), 500, 81)

	time := func(get func([]byte, int) ([]byte, error)) int64 {
		var buf []byte
		var total int64
		for _, id := range ids {
			var err error
			buf, err = get(buf[:0], id)
			if err != nil {
				t.Fatal(err)
			}
			total += int64(len(buf))
		}
		return total
	}
	// Warm both paths once so allocator effects don't dominate, then
	// compare bytes decoded per benchmarked pass using testing.Benchmark.
	time(rr.GetAppend)
	time(br.GetAppend)
	rlzRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			time(rr.GetAppend)
		}
	})
	blkRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			time(br.GetAppend)
		}
	})
	rlzNs := rlzRes.NsPerOp()
	blkNs := blkRes.NsPerOp()
	if rlzNs*2 > blkNs {
		t.Errorf("RLZ random access (%d ns) not clearly faster than blocked zlib (%d ns)", rlzNs, blkNs)
	}
}
