// Quickstart: the RLZ pipeline end to end on a toy collection.
//
// It walks the exact steps of §3.1 of the paper: sample a dictionary from
// the collection, factorize each document against it, encode the factors,
// and then randomly access one document by decoding only its own factors.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"rlz/internal/archive"
	"rlz/internal/rlz"
)

func main() {
	// A tiny "collection": documents sharing boilerplate, as web pages do.
	docs := [][]byte{
		[]byte("<html><body><h1>Welcome</h1><p>City services and permits information.</p></body></html>"),
		[]byte("<html><body><h1>Permits</h1><p>City services and permits information for residents.</p></body></html>"),
		[]byte("<html><body><h1>Contact</h1><p>City services and permits information hotline.</p></body></html>"),
		[]byte("<html><body><h1>About</h1><p>City services and permits information archive.</p></body></html>"),
	}

	// Step 1 (§3.3): build the dictionary by evenly sampling the
	// collection treated as one string. Real deployments use ~0.1% of
	// the collection; the toy uses half.
	var collection []byte
	for _, d := range docs {
		collection = append(collection, d...)
	}
	dictData := rlz.SampleEven(collection, len(collection)/2, 64)

	// Step 2: factorize one document by hand to see the (p, l) pairs.
	dict, err := rlz.NewDictionary(dictData)
	if err != nil {
		log.Fatal(err)
	}
	factors := dict.Factorize(docs[1], nil)
	fmt.Printf("document 1 factorizes into %d factors against a %d-byte dictionary:\n",
		len(factors), dict.Len())
	for _, f := range factors {
		fmt.Printf("  %v\n", f)
	}
	roundTrip, err := dict.Decode(nil, factors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decode(factorize(doc)) == doc: %v\n\n", bytes.Equal(roundTrip, docs[1]))

	// Steps 3-4: the archive layer does the same for a whole collection
	// and adds the document map for random access. The same Build call
	// with Backend: archive.Block or archive.Raw would produce the
	// paper's baselines instead; OpenBytes auto-detects either way.
	var buf bytes.Buffer
	res, err := archive.Build(&buf, archive.FromBodies(docs),
		archive.Options{Backend: archive.RLZ, Dict: dictData, Codec: rlz.CodecZV})
	if err != nil {
		log.Fatal(err)
	}

	r, err := archive.OpenBytes(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	st := r.Stats()
	fmt.Printf("archive: %d docs, %d raw bytes -> %d bytes (backend %s, codec %s)\n",
		st.NumDocs, res.RawBytes, st.Size, st.Backend, st.Codec)

	// Random access: decode document 2 alone, without touching the rest.
	doc2, err := r.Get(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random access to document 2: %q\n", doc2)
}
