// Webarchive: compress a synthetic web crawl with RLZ and with the
// blocked-zlib baseline, then compare archive sizes and random-access
// retrieval — the paper's core comparison (Tables 4 and 6) as a runnable
// program.
//
// Run with:
//
//	go run ./examples/webarchive
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"rlz/internal/blockstore"
	"rlz/internal/corpus"
	"rlz/internal/rlz"
	"rlz/internal/store"
	"rlz/internal/workload"
)

func main() {
	// An 8 MB synthetic crawl: ~30 sites, shared templates, Zipf text.
	coll := corpus.Generate(corpus.Gov, 8<<20, 7)
	raw := coll.TotalSize()
	fmt.Printf("crawl: %d documents, %.1f MB raw\n\n", coll.Len(), float64(raw)/(1<<20))

	// RLZ archive: 1% dictionary, 1 KB samples, ZV pair coding.
	dictData := rlz.SampleEven(coll.Bytes(), int(raw)/100, 1<<10)
	var rlzBuf bytes.Buffer
	w, err := store.NewWriter(&rlzBuf, dictData, rlz.CodecZV)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for _, d := range coll.Docs {
		if _, err := w.Append(d.Body); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rlz   : %5.2f%% of raw (dict %d KB), compressed in %v\n",
		100*float64(rlzBuf.Len())/float64(raw), len(dictData)>>10,
		time.Since(start).Round(time.Millisecond))

	// Blocked zlib baseline, 256 KB blocks (the Lucene/Indri approach).
	var blkBuf bytes.Buffer
	bw, err := blockstore.NewWriter(&blkBuf, blockstore.Options{BlockSize: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	for _, d := range coll.Docs {
		if _, err := bw.Append(d.Body); err != nil {
			log.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zlib  : %5.2f%% of raw (256 KB blocks), compressed in %v\n\n",
		100*float64(blkBuf.Len())/float64(raw), time.Since(start).Round(time.Millisecond))

	// Random access shoot-out: the same 2000 query-log style requests
	// against both archives (pure CPU; the paper additionally pays disk
	// seeks, which hurt the blocked baseline even more).
	rr, err := store.OpenBytes(rlzBuf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	br, err := blockstore.OpenBytes(blkBuf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	ids := workload.QueryLog(coll.Len(), 2000, 42)

	var buf []byte
	start = time.Now()
	for _, id := range ids {
		if buf, err = rr.GetAppend(buf[:0], id); err != nil {
			log.Fatal(err)
		}
	}
	rlzTime := time.Since(start)

	start = time.Now()
	for _, id := range ids {
		if buf, err = br.GetAppend(buf[:0], id); err != nil {
			log.Fatal(err)
		}
	}
	blkTime := time.Since(start)

	fmt.Printf("random access, %d requests:\n", len(ids))
	fmt.Printf("  rlz : %8v  (%.0f docs/s)\n", rlzTime.Round(time.Millisecond),
		float64(len(ids))/rlzTime.Seconds())
	fmt.Printf("  zlib: %8v  (%.0f docs/s)\n", blkTime.Round(time.Millisecond),
		float64(len(ids))/blkTime.Seconds())
	fmt.Printf("  rlz is %.1fx faster at decode CPU alone\n", float64(blkTime)/float64(rlzTime))

	// Spot-check correctness of both paths.
	for _, id := range []int{0, coll.Len() / 2, coll.Len() - 1} {
		a, err := rr.Get(id)
		if err != nil {
			log.Fatal(err)
		}
		b, err := br.Get(id)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(a, coll.Docs[id].Body) || !bytes.Equal(b, coll.Docs[id].Body) {
			log.Fatalf("document %d mismatch", id)
		}
	}
	fmt.Println("\nspot checks passed: both stores return identical documents")
}
