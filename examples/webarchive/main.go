// Webarchive: compress a synthetic web crawl with every backend — RLZ,
// the blocked-zlib baseline, and the uncompressed ascii baseline — then
// compare archive sizes and random-access retrieval: the paper's core
// comparison (Tables 4 and 6) as a runnable program.
//
// Every archive is built through the unified archive layer's streaming,
// parallel pipeline, and read back through archive.OpenBytes auto-
// detection, so swapping backends is a one-field change.
//
// Run with:
//
//	go run ./examples/webarchive
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"rlz/internal/archive"
	"rlz/internal/corpus"
	"rlz/internal/rlz"
	"rlz/internal/workload"
)

func main() {
	// An 8 MB synthetic crawl: ~30 sites, shared templates, Zipf text.
	coll := corpus.Generate(corpus.Gov, 8<<20, 7)
	raw := coll.TotalSize()
	fmt.Printf("crawl: %d documents, %.1f MB raw\n\n", coll.Len(), float64(raw)/(1<<20))

	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}

	// RLZ archive: 1% dictionary, 1 KB samples, ZV pair coding. The
	// other backends need no dictionary.
	dictData := rlz.SampleEven(coll.Bytes(), int(raw)/100, 1<<10)
	backends := []struct {
		name string
		opts archive.Options
	}{
		{"rlz", archive.Options{Backend: archive.RLZ, Dict: dictData, Codec: rlz.CodecZV}},
		{"zlib", archive.Options{Backend: archive.Block, BlockSize: 256 << 10}},
		{"ascii", archive.Options{Backend: archive.Raw}},
	}

	archives := map[string][]byte{}
	for _, b := range backends {
		var buf bytes.Buffer
		start := time.Now()
		if _, err := archive.Build(&buf, archive.FromBodies(bodies), b.opts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s: %6.2f%% of raw, compressed in %v\n", b.name,
			100*float64(buf.Len())/float64(raw), time.Since(start).Round(time.Millisecond))
		archives[b.name] = buf.Bytes()
	}

	// Random access shoot-out: the same 2000 query-log style requests
	// against every archive (pure CPU; the paper additionally pays disk
	// seeks, which hurt the blocked baseline even more).
	ids := workload.QueryLog(coll.Len(), 2000, 42)
	fmt.Printf("\nrandom access, %d requests:\n", len(ids))
	times := map[string]time.Duration{}
	for _, b := range backends {
		r, err := archive.OpenBytes(archives[b.name])
		if err != nil {
			log.Fatal(err)
		}
		if got := r.Stats().Backend; got != b.opts.Backend {
			log.Fatalf("%s: auto-detected backend %s", b.name, got)
		}
		var buf []byte
		start := time.Now()
		for _, id := range ids {
			if buf, err = r.GetAppend(buf[:0], id); err != nil {
				log.Fatal(err)
			}
		}
		times[b.name] = time.Since(start)
		fmt.Printf("  %-5s: %8v  (%.0f docs/s)\n", b.name,
			times[b.name].Round(time.Millisecond),
			float64(len(ids))/times[b.name].Seconds())
	}
	fmt.Printf("  rlz is %.1fx faster than blocked zlib at decode CPU alone\n",
		float64(times["zlib"])/float64(times["rlz"]))

	// Spot-check correctness of every path.
	for _, b := range backends {
		r, err := archive.OpenBytes(archives[b.name])
		if err != nil {
			log.Fatal(err)
		}
		for _, id := range []int{0, coll.Len() / 2, coll.Len() - 1} {
			got, err := r.Get(id)
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, coll.Docs[id].Body) {
				log.Fatalf("%s: document %d mismatch", b.name, id)
			}
		}
	}
	fmt.Println("\nspot checks passed: every backend returns identical documents")
}
