// Dynamic: RLZ in a growing collection (§3.6 and Table 10 of the paper).
//
// The dictionary is sampled when only a fraction of the eventual
// collection exists; documents that arrive later are compressed against
// that stale dictionary. The demo shows the paper's finding: compression
// degrades only slightly, because evenly sampled dictionaries capture
// structure that persists as the collection grows.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"rlz/internal/corpus"
	"rlz/internal/rlz"
)

func main() {
	coll := corpus.Generate(corpus.Wiki, 6<<20, 11)
	collection := coll.Bytes()
	raw := len(collection)
	dictSize := raw / 50 // 2% dictionary
	fmt.Printf("collection: %d documents, %.1f MB; dictionary budget %d KB\n\n",
		coll.Len(), float64(raw)/(1<<20), dictSize>>10)

	fmt.Println("dictionary sampled from a PREFIX of the collection, then")
	fmt.Println("used to compress ALL of it (ZZ pair coding):")
	fmt.Printf("  %-8s  %s\n", "prefix", "encoding %")
	for _, pct := range []int{100, 75, 50, 25, 10, 1} {
		prefixLen := raw * pct / 100
		dictData := rlz.SamplePrefix(collection, prefixLen, dictSize, 1<<10)
		dict, err := rlz.NewDictionary(dictData)
		if err != nil {
			log.Fatal(err)
		}
		var encoded int
		var factors []rlz.Factor
		for _, d := range coll.Docs {
			factors = dict.Factorize(d.Body, factors[:0])
			encoded += rlz.CodecZZ.EncodedSize(factors)
		}
		encoded += len(dictData) // the dictionary ships with the archive
		fmt.Printf("  %6d%%   %6.2f\n", pct, 100*float64(encoded)/float64(raw))
	}

	fmt.Println("\nappending genuinely NEW content (fresh sites never sampled):")
	extra := corpus.Generate(corpus.Wiki, 1<<20, 999) // different seed = new sites
	dictData := rlz.SampleEven(collection, dictSize, 1<<10)
	dict, err := rlz.NewDictionary(dictData)
	if err != nil {
		log.Fatal(err)
	}
	measure := func(c *corpus.Collection) float64 {
		var encoded, raw int
		var factors []rlz.Factor
		for _, d := range c.Docs {
			factors = dict.Factorize(d.Body, factors[:0])
			encoded += rlz.CodecZZ.EncodedSize(factors)
			raw += len(d.Body)
		}
		return 100 * float64(encoded) / float64(raw)
	}
	fmt.Printf("  original documents: %6.2f%% (payload only)\n", measure(coll))
	fmt.Printf("  unseen documents:   %6.2f%% (payload only)\n", measure(extra))
	fmt.Println("\nnew same-genre content still compresses well; when drift grows,")
	fmt.Println("§3.6's remedies apply: append fresh samples to the dictionary (old")
	fmt.Println("factor codes stay valid) or regenerate the dictionary entirely.")
}
