// Snippets: query-biased snippet generation over an RLZ archive — the
// motivating workload from the paper's introduction. A search engine
// serving results must fetch each hit document and extract a text window
// around the query terms; that demands exactly the fast random access RLZ
// provides.
//
// Run with:
//
//	go run ./examples/snippets
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"rlz/internal/archive"
	"rlz/internal/corpus"
	"rlz/internal/rlz"
	"rlz/internal/workload"
)

func main() {
	coll := corpus.Generate(corpus.Gov, 4<<20, 3)
	dictData := rlz.SampleEven(coll.Bytes(), int(coll.TotalSize())/100, 1<<10)

	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	var buf bytes.Buffer
	if _, err := archive.Build(&buf, archive.FromBodies(bodies),
		archive.Options{Backend: archive.RLZ, Dict: dictData, Codec: rlz.CodecZV}); err != nil {
		log.Fatal(err)
	}
	r, err := archive.OpenBytes(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d documents, %.2f%% of raw\n\n",
		r.NumDocs(), 100*float64(r.Size())/float64(coll.TotalSize()))

	// Pick a query term that actually occurs: the most common word of
	// document 0's body text.
	query := commonWord(coll.Docs[0].Body)
	fmt.Printf("query: %q\n", query)

	// Simulate the search engine's top-20 hits for 50 queries, then fetch
	// each hit and produce a snippet.
	hits := workload.QueryLog(r.NumDocs(), 50*20, 9)
	start := time.Now()
	shown := 0
	var doc []byte
	for _, id := range hits {
		doc, err = r.GetAppend(doc[:0], id)
		if err != nil {
			log.Fatal(err)
		}
		if s, ok := snippet(doc, query, 60); ok && shown < 5 {
			fmt.Printf("  doc %5d: ...%s...\n", id, s)
			shown++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\nfetched and snippeted %d result documents in %v (%.0f docs/s)\n",
		len(hits), elapsed.Round(time.Millisecond), float64(len(hits))/elapsed.Seconds())
}

// snippet returns a text window of the given radius around the first
// occurrence of term, with markup stripped and whitespace collapsed.
func snippet(doc []byte, term string, radius int) (string, bool) {
	i := bytes.Index(doc, []byte(term))
	if i < 0 {
		return "", false
	}
	lo, hi := i-radius, i+len(term)+radius
	if lo < 0 {
		lo = 0
	}
	if hi > len(doc) {
		hi = len(doc)
	}
	window := string(doc[lo:hi])
	// Strip any tags overlapping the window.
	var b strings.Builder
	inTag := false
	for _, c := range window {
		switch {
		case c == '<':
			inTag = true
		case c == '>':
			inTag = false
			b.WriteByte(' ')
		case !inTag:
			b.WriteRune(c)
		}
	}
	return strings.Join(strings.Fields(b.String()), " "), true
}

// commonWord finds a frequent plain word in the document body.
func commonWord(doc []byte) string {
	counts := map[string]int{}
	for _, f := range strings.Fields(string(doc)) {
		if strings.ContainsAny(f, "<>/\"=") || len(f) < 4 {
			continue
		}
		counts[f]++
	}
	best, bestN := "the", 0
	for w, n := range counts {
		if n > bestN {
			best, bestN = w, n
		}
	}
	return best
}
