module rlz

go 1.24
