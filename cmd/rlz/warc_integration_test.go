package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"rlz/internal/corpus"
	"rlz/internal/store"
	"rlz/internal/warc"
)

// TestBuildFromWARC exercises the full toolchain: generate a collection,
// serialize it to the warc container, build an archive from it with the
// CLI path, and read every document back.
func TestBuildFromWARC(t *testing.T) {
	coll := corpus.Generate(corpus.Gov, 1<<20, 33)
	warcPath := filepath.Join(t.TempDir(), "crawl.warc")
	if err := warc.WriteFile(warcPath, coll.Records()); err != nil {
		t.Fatal(err)
	}
	arc := filepath.Join(t.TempDir(), "crawl.rlz")
	if err := cmdBuild([]string{"-o", arc, "-warc", warcPath, "-codec", "ZV", "-dict", "16KB"}); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenFile(arc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumDocs() != coll.Len() {
		t.Fatalf("NumDocs = %d, want %d", r.NumDocs(), coll.Len())
	}
	for _, id := range []int{0, coll.Len() / 3, coll.Len() - 1} {
		got, err := r.Get(id)
		if err != nil || !bytes.Equal(got, coll.Docs[id].Body) {
			t.Fatalf("Get(%d): %v", id, err)
		}
	}
}

func TestBuildFromMissingWARC(t *testing.T) {
	arc := filepath.Join(t.TempDir(), "x.rlz")
	if err := cmdBuild([]string{"-o", arc, "-warc", "/nonexistent.warc"}); err == nil {
		t.Error("missing warc accepted")
	}
}
