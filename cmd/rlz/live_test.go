package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rlz/internal/archive"
	"rlz/internal/collection"
)

// TestLiveLifecycleCLI walks the whole collection lifecycle through the
// CLI surface: append (auto-init) → read back → compact → read back →
// append more → gc, with every read going through archive.Open exactly
// as get/cat/grep/verify do.
func TestLiveLifecycleCLI(t *testing.T) {
	srcDir, docs := writeDocs(t)
	dir := filepath.Join(t.TempDir(), "live")

	if err := cmdAppend([]string{"-a", dir, "-dir", srcDir}); err != nil {
		t.Fatalf("append: %v", err)
	}
	check := func(stage string, want [][]byte) {
		t.Helper()
		r, err := archive.Open(dir)
		if err != nil {
			t.Fatalf("%s: open: %v", stage, err)
		}
		defer r.Close()
		if r.NumDocs() != len(want) {
			t.Fatalf("%s: NumDocs = %d, want %d", stage, r.NumDocs(), len(want))
		}
		for i, w := range want {
			got, err := r.Get(i)
			if err != nil || !bytes.Equal(got, w) {
				t.Fatalf("%s: Get(%d): %d bytes, %v", stage, i, len(got), err)
			}
		}
	}
	check("after append", docs)

	if err := cmdCompact([]string{"-a", dir, "-dict", "256B", "-sample", "64B"}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	check("after compact", docs)

	// The compacted segment really is RLZ.
	r, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	col, ok := collection.FromReader(r)
	if !ok {
		t.Fatal("not a collection")
	}
	info := col.Info()
	if len(info.Segments) != 1 || info.Segments[0].Backend != archive.RLZ {
		t.Fatalf("info = %+v", info)
	}
	r.Close()

	// Append more after compaction; ids continue.
	extra := filepath.Join(srcDir, "doc00.html")
	if err := cmdAppend([]string{"-a", dir, extra}); err != nil {
		t.Fatalf("second append: %v", err)
	}
	check("after second append", append(append([][]byte{}, docs...), docs[0]))

	// verify (with a tombstone present) and grep work over the live dir.
	r, err = archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	col, _ = collection.FromReader(r)
	if err := col.Delete(3); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := cmdVerify([]string{"-a", dir}); err != nil {
		t.Fatalf("verify with tombstone: %v", err)
	}
	if err := cmdGrep([]string{"-a", dir, "boilerplate"}); err != nil {
		t.Fatalf("grep: %v", err)
	}

	// Plant an orphan; gc removes it and the collection stays intact.
	if err := os.WriteFile(filepath.Join(dir, "seg-09999999.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdGC([]string{"-a", dir}); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-09999999.tmp")); !os.IsNotExist(err) {
		t.Fatalf("gc kept the orphan: %v", err)
	}
	deleted := append(append([][]byte{}, docs...), docs[0])
	r, err = archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i, w := range deleted {
		got, err := r.Get(i)
		if i == 3 {
			if err == nil {
				t.Fatalf("deleted doc 3 still served")
			}
			continue
		}
		if err != nil || !bytes.Equal(got, w) {
			t.Fatalf("Get(%d) after gc: %v", i, err)
		}
	}
}
