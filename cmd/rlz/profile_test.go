package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDumpHeapProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dumpHeapProfile(f); err != nil {
		t.Fatalf("dumpHeapProfile: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

// A profile that cannot be flushed must be reported, not silently
// dropped: before the fix the deferred writer discarded f.Close()'s
// error, so an ENOSPC truncation looked like a successful run.
func TestDumpHeapProfileReportsWriteFailure(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dumpHeapProfile(f); err == nil {
		t.Fatal("dumpHeapProfile on a closed file reported success")
	}
}
