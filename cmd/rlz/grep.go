package main

import (
	"flag"
	"fmt"
	"os"

	"rlz/internal/archive"
)

// cmdGrep searches the archive for a byte pattern and prints one line per
// match: document ID, offset, and a context window fetched with GetRange
// (so only the window is decoded, not the whole document twice). Search
// is a capability of the RLZ backend; other backends report an error.
func cmdGrep(args []string) error {
	fs := flag.NewFlagSet("grep", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	limit := fs.Int("n", 0, "stop after this many matches (0 = all)")
	radius := fs.Int("c", 30, "context bytes shown on each side of a match")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" || fs.NArg() != 1 {
		return fmt.Errorf("grep: -a ARCHIVE and exactly one PATTERN are required")
	}
	pattern := []byte(fs.Arg(0))

	r, err := archive.Open(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	s, ok := archive.AsSearcher(r)
	if !ok {
		return fmt.Errorf("grep: %s archives do not support search (rebuild with -backend rlz)", r.Stats().Backend)
	}

	matches, err := s.FindAll(pattern, *limit)
	if err != nil {
		return err
	}
	for _, m := range matches {
		ctx, err := s.GetRange(m.Doc, m.Offset-*radius, m.Offset+len(pattern)+*radius)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stdout, "doc %d @%d: %q\n", m.Doc, m.Offset, ctx)
	}
	fmt.Fprintf(os.Stdout, "%d match(es)\n", len(matches))
	return nil
}
