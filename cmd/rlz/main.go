// Command rlz builds and queries RLZ archives: document collections
// compressed against a sampled dictionary with fast random access, per
// Hoobin, Puglisi & Zobel (VLDB 2011).
//
// Usage:
//
//	rlz build -o archive.rlz [-codec ZV] [-dict 1MB] [-sample 1KB] FILE...
//	rlz build -o archive.rlz -dir ./crawl
//	rlz get -a archive.rlz -id 3
//	rlz cat -a archive.rlz
//	rlz stats -a archive.rlz
//	rlz verify -a archive.rlz
//
// Each input file is one document; -dir walks a directory tree in
// lexical order, taking every regular file as a document.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"rlz/internal/rlz"
	"rlz/internal/store"
	"rlz/internal/units"
	"rlz/internal/warc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "get":
		err = cmdGet(os.Args[2:])
	case "cat":
		err = cmdCat(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "grep":
		err = cmdGrep(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rlz: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rlz build  -o ARCHIVE [-codec ZZ|ZV|UZ|UV|ZS|US|ZH|UH] [-dict SIZE] [-sample SIZE] FILE... | -dir DIR
  rlz get    -a ARCHIVE -id N
  rlz cat    -a ARCHIVE
  rlz stats  -a ARCHIVE
  rlz verify -a ARCHIVE
  rlz grep   -a ARCHIVE [-n LIMIT] [-c RADIUS] PATTERN`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "", "output archive path (required)")
	codecName := fs.String("codec", "ZV", "pair codec: ZZ, ZV, UZ, UV (paper) or ZS, US, ZH, UH (extensions)")
	dictSize := fs.String("dict", "0", "dictionary size (e.g. 1MB); 0 means 1% of the collection")
	sampleSize := fs.String("sample", "1KB", "dictionary sample length")
	dir := fs.String("dir", "", "treat every regular file under this directory as a document")
	warcPath := fs.String("warc", "", "read documents from a warc collection file (see cmd/rlzgen)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("build: -o is required")
	}
	codec, err := rlz.CodecByName(*codecName)
	if err != nil {
		return err
	}
	ds, err := units.ParseSize(*dictSize)
	if err != nil {
		return err
	}
	ss, err := units.ParseSize(*sampleSize)
	if err != nil {
		return err
	}

	// Gather documents: explicit files, a directory walk, or a warc
	// collection file.
	var docs [][]byte
	var names []string
	switch {
	case *warcPath != "":
		recs, err := warc.ReadFile(*warcPath)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			docs = append(docs, rec.Body)
			names = append(names, rec.URL)
		}
	default:
		paths := fs.Args()
		if *dir != "" {
			paths, err = collectFiles(*dir)
			if err != nil {
				return err
			}
		}
		docs = make([][]byte, len(paths))
		names = paths
		for i, p := range paths {
			docs[i], err = os.ReadFile(p)
			if err != nil {
				return err
			}
		}
	}
	if len(docs) == 0 {
		return fmt.Errorf("build: no input documents")
	}

	// Pass 1: read the collection to sample the dictionary (§3.3 treats
	// the collection as a single string).
	var total int
	for _, d := range docs {
		total += len(d)
	}
	collection := make([]byte, 0, total)
	for _, d := range docs {
		collection = append(collection, d...)
	}
	if ds <= 0 {
		ds = total / 100
		if ds < 4096 {
			ds = 4096
		}
	}
	dict := rlz.SampleEven(collection, ds, ss)

	// Pass 2: factorize and write.
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := store.NewWriter(f, dict, codec)
	if err != nil {
		return err
	}
	stats := rlz.NewStats(w.Dictionary())
	w.CollectStats(stats)
	for i, d := range docs {
		if _, err := w.Append(d); err != nil {
			return fmt.Errorf("appending %s: %w", names[i], err)
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d docs, %d -> %d bytes (%.2f%%), dict %d bytes, codec %s, avg factor %.1f\n",
		*out, len(docs), total, st.Size(), 100*float64(st.Size())/float64(total),
		len(dict), codec, stats.AvgFactorLen())
	return nil
}

func collectFiles(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			paths = append(paths, p)
		}
		return nil
	})
	sort.Strings(paths)
	return paths, err
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	id := fs.Int("id", -1, "document ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" || *id < 0 {
		return fmt.Errorf("get: -a and -id are required")
	}
	r, err := store.OpenFile(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	doc, err := r.Get(*id)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(doc)
	return err
}

func cmdCat(args []string) error {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" {
		return fmt.Errorf("cat: -a is required")
	}
	r, err := store.OpenFile(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	var buf []byte
	for id := 0; id < r.NumDocs(); id++ {
		buf, err = r.GetAppend(buf[:0], id)
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" {
		return fmt.Errorf("stats: -a is required")
	}
	r, err := store.OpenFile(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	var raw int64
	var buf []byte
	for id := 0; id < r.NumDocs(); id++ {
		buf, err = r.GetAppend(buf[:0], id)
		if err != nil {
			return err
		}
		raw += int64(len(buf))
	}
	fmt.Printf("documents:   %d\n", r.NumDocs())
	fmt.Printf("codec:       %s\n", r.Codec())
	fmt.Printf("dictionary:  %d bytes\n", r.DictLen())
	fmt.Printf("archive:     %d bytes\n", r.Size())
	fmt.Printf("decoded:     %d bytes\n", raw)
	if raw > 0 {
		fmt.Printf("ratio:       %.2f%%\n", 100*float64(r.Size())/float64(raw))
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" {
		return fmt.Errorf("verify: -a is required")
	}
	r, err := store.OpenFile(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	var buf []byte
	for id := 0; id < r.NumDocs(); id++ {
		buf, err = r.GetAppend(buf[:0], id)
		if err != nil {
			return fmt.Errorf("document %d: %w", id, err)
		}
	}
	fmt.Printf("%s: %d documents decode cleanly\n", *arc, r.NumDocs())
	return nil
}
