// Command rlz builds and queries document archives: RLZ-compressed
// collections per Hoobin, Puglisi & Zobel (VLDB 2011), the paper's
// block-compressed baselines, and the uncompressed ascii baseline — all
// through one backend-neutral archive layer.
//
// Usage:
//
//	rlz build -o archive.rlz [-backend rlz|block|raw] [-codec ZV] [-dict 1MB] [-sample 1KB] FILE...
//	rlz build -o archive.blk -backend block [-block 256KB] [-alg zlib|flate|lzma|lzr] -dir ./crawl
//	rlz build -o crawl.shards -shards 16 -warc crawl.warc
//	rlz get -a archive.rlz -id 3
//	rlz cat -a archive.rlz
//	rlz stats -a archive.rlz
//	rlz verify -a archive.rlz
//	rlz grep -a archive.rlz PATTERN
//	rlz append -a livedir/ newdoc.html
//	rlz compact -a livedir/
//	rlz gc -a livedir/
//
// Each input file is one document; -dir walks a directory tree in
// lexical order, taking every regular file as a document; -warc streams
// a warc collection file. Reading commands auto-detect the backend from
// the archive's magic, so none of them need to be told which scheme
// built the file. -shards N (N > 1) partitions the build across N
// independently built shard archives in a directory; reading commands
// open the directory (or its MANIFEST file) like any single archive.
//
// append, compact and gc operate on live collections
// (internal/collection): generational archive sets that grow online.
// append lands documents in an open raw segment (readable immediately,
// ids stable forever); compact drains raw segments into RLZ archives
// against a shared sampled dictionary; gc removes superseded files.
// Reading commands open a collection directory like any archive.
//
// To serve an archive hot over HTTP, see cmd/rlzd.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"

	"rlz/internal/archive"
	"rlz/internal/blockstore"
	"rlz/internal/codec"
	"rlz/internal/collection"
	"rlz/internal/lz77"
	"rlz/internal/rlz"
	"rlz/internal/shard"
	"rlz/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "get":
		err = cmdGet(os.Args[2:])
	case "cat":
		err = cmdCat(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "grep":
		err = cmdGrep(os.Args[2:])
	case "append":
		err = cmdAppend(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rlz: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rlz build  -o ARCHIVE [-backend rlz|block|raw] [-workers N] [-shards N] FILE... | -dir DIR | -warc FILE
             rlz backend:   [-codec ZZ|ZV|UZ|UV|ZS|US|ZH|UH] [-dict SIZE] [-sample SIZE] [-factq 1-3] [-nojump]
             block backend: [-block SIZE] [-alg zlib|flate|lzma|lzr]
             -shards N > 1 writes a shard directory; read commands take -a DIR
             profiling:     [-cpuprofile FILE] [-memprofile FILE]
  rlz get    -a ARCHIVE -id N
  rlz cat    -a ARCHIVE
  rlz stats  -a ARCHIVE
  rlz verify -a ARCHIVE [-workers N]
  rlz grep   -a ARCHIVE [-n LIMIT] [-c RADIUS] PATTERN
  rlz append -a DIR [-sync] FILE... | -dir DIR | -warc FILE
             appends to a live collection, creating it if absent;
             documents are readable (rlzd, get, grep) immediately
  rlz compact -a DIR [-codec ZV] [-dict SIZE] [-sample SIZE] [-factq 1-3] [-nojump] [-workers N]
             seals the open segment and rewrites raw segments as RLZ
  rlz gc     -a DIR
             removes files superseded by the current generation`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "", "output archive path (required)")
	backendName := fs.String("backend", "rlz", "storage backend: rlz, block or raw")
	codecName := fs.String("codec", "ZV", "rlz pair codec: ZZ, ZV, UZ, UV (paper) or ZS, US, ZH, UH (extensions)")
	dictSize := fs.String("dict", "0", "rlz dictionary size (e.g. 1MB); 0 means 1% of the collection")
	sampleSize := fs.String("sample", "1KB", "rlz dictionary sample length")
	factQ := fs.Int("factq", 0, "rlz factorization jump-table q-gram width (1-3); 0 means 2 (256^q intervals, 512KB at q=2)")
	noJump := fs.Bool("nojump", false, "rlz: disable the factorization jump table (A/B baseline; output is identical either way)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the build to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the build to this file")
	blockSize := fs.String("block", "256KB", "block backend: uncompressed block capacity; 0 means one doc per block")
	algName := fs.String("alg", "zlib", "block backend compressor: zlib, flate, lzma or lzr")
	workers := fs.Int("workers", 0, "build concurrency; 0 means GOMAXPROCS (output is identical at any count)")
	shards := fs.Int("shards", 1, "split the archive into N independently built shards (-o becomes a directory)")
	dir := fs.String("dir", "", "treat every regular file under this directory as a document")
	warcPath := fs.String("warc", "", "read documents from a warc collection file (see cmd/rlzgen)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("build: -o is required")
	}
	backend, err := archive.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	if *factQ < 0 || *factQ > 3 {
		// Reject rather than clamp: a typo'd width would otherwise
		// silently allocate a table of the wrong size (q=3 is 128MB).
		return fmt.Errorf("build: -factq %d out of range (want 1-3, or 0 for the default)", *factQ)
	}

	// Profiling hooks so hot-path work on the build starts from a profile
	// instead of a guess: -cpuprofile covers the whole build (sampling
	// pass, factorization pipeline, commit), -memprofile snapshots the
	// heap after it finishes.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			if err := dumpHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rlz: heap profile:", err)
			}
		}()
	}

	// The document source is re-openable: RLZ dictionary sampling makes
	// two streaming passes before the build pass, so documents are never
	// all resident at once.
	var openSrc func() (archive.DocSource, error)
	switch {
	case *warcPath != "":
		openSrc = func() (archive.DocSource, error) { return archive.FromWARC(*warcPath) }
	default:
		paths := fs.Args()
		if *dir != "" {
			paths, err = collectFiles(*dir)
			if err != nil {
				return err
			}
		}
		if len(paths) == 0 {
			return fmt.Errorf("build: no input documents")
		}
		openSrc = func() (archive.DocSource, error) { return archive.FromFiles(paths), nil }
	}

	opts := archive.Options{Backend: backend, Workers: *workers}
	switch backend {
	case archive.RLZ:
		codec, err := rlz.CodecByName(*codecName)
		if err != nil {
			return err
		}
		ds, err := units.ParseSize(*dictSize)
		if err != nil {
			return err
		}
		ss, err := units.ParseSize(*sampleSize)
		if err != nil {
			return err
		}
		dict, total, err := archive.SampleDict(openSrc, ds, ss)
		if err != nil {
			return err
		}
		if total == 0 {
			return fmt.Errorf("build: no input documents")
		}
		opts.Dict = dict
		opts.Codec = codec
		opts.Factorizer = rlz.FactorizerOptions{Q: *factQ, DisableJump: *noJump}
	case archive.Block:
		bs, err := units.ParseSize(*blockSize)
		if err != nil {
			return err
		}
		opts.BlockSize = bs
		// Resolve against the codec registry, so every registered codec is
		// buildable by name and an unknown one fails here — before any
		// input is read — with the full codec list.
		cdc, err := codec.ByName(*algName)
		if err != nil {
			return fmt.Errorf("build: %w", err)
		}
		opts.Algorithm = blockstore.Algorithm(cdc.ID())
		if opts.Algorithm == blockstore.LZ77 || opts.Algorithm == blockstore.LZR {
			opts.LZ77 = lz77.Options{WindowSize: 4 << 20, MaxChain: 32}
		}
	}

	src, err := openSrc()
	if err != nil {
		return err
	}
	var (
		res  archive.BuildResult
		size int64
	)
	if *shards > 1 {
		// Sharded build: -o names a directory holding a manifest plus
		// one independently built archive per shard. Reading commands
		// open it like any archive (rlz get -a DIR).
		res, err = shard.Create(*out, src, shard.Options{Shards: *shards, Archive: opts})
		if err != nil {
			return err
		}
		if res.Docs == 0 {
			shard.RemoveArchive(*out)
			return fmt.Errorf("build: no input documents")
		}
		// Sum shard file sizes from the manifest (matching Reader.Size)
		// instead of reopening the whole set just to report a number.
		m, err := shard.ReadManifest(filepath.Join(*out, shard.ManifestName))
		if err != nil {
			return err
		}
		for _, s := range m.Shards {
			st, err := os.Stat(filepath.Join(*out, s.Path))
			if err != nil {
				return err
			}
			size += st.Size()
		}
	} else {
		res, err = archive.Create(*out, src, opts)
		if err != nil {
			return err
		}
		if res.Docs == 0 {
			_ = os.Remove(*out)
			return fmt.Errorf("build: no input documents")
		}
		st, err := os.Stat(*out)
		if err != nil {
			return err
		}
		size = st.Size()
	}
	fmt.Printf("%s: backend %s, %d docs, %d -> %d bytes (%.2f%%)",
		*out, backend, res.Docs, res.RawBytes, size,
		100*float64(size)/float64(res.RawBytes))
	if backend == archive.RLZ {
		fmt.Printf(", dict %d bytes, codec %s", len(opts.Dict), opts.Codec)
	}
	if *shards > 1 {
		fmt.Printf(", %d shards", *shards)
	}
	fmt.Println()
	return nil
}

// dumpHeapProfile settles the heap, writes the profile to f, and closes
// it. The Close error is part of the result: the final flush is where a
// full disk surfaces, and a silently truncated profile parses as valid
// right up until pprof rejects it.
func dumpHeapProfile(f *os.File) error {
	runtime.GC() // settle the heap so the profile shows retained memory
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing %s: %w", f.Name(), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", f.Name(), err)
	}
	return nil
}

func collectFiles(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			paths = append(paths, p)
		}
		return nil
	})
	sort.Strings(paths)
	return paths, err
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	id := fs.Int("id", -1, "document ID (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" || *id < 0 {
		return fmt.Errorf("get: -a and -id are required")
	}
	r, err := archive.Open(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	doc, err := r.Get(*id)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(doc)
	return err
}

func cmdCat(args []string) error {
	fs := flag.NewFlagSet("cat", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" {
		return fmt.Errorf("cat: -a is required")
	}
	r, err := archive.Open(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	var buf []byte
	for id := 0; id < r.NumDocs(); id++ {
		buf, err = r.GetAppend(buf[:0], id)
		if err != nil {
			// A live collection's tombstoned ids are verified absences,
			// not failures; cat emits the surviving documents.
			if errors.Is(err, collection.ErrDeleted) {
				continue
			}
			return err
		}
		if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" {
		return fmt.Errorf("stats: -a is required")
	}
	r, err := archive.Open(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	var raw int64
	var buf []byte
	for id := 0; id < r.NumDocs(); id++ {
		buf, err = r.GetAppend(buf[:0], id)
		if err != nil {
			if errors.Is(err, collection.ErrDeleted) {
				continue
			}
			return err
		}
		raw += int64(len(buf))
	}
	st := r.Stats()
	fmt.Printf("backend:     %s\n", st.Backend)
	fmt.Printf("documents:   %d\n", st.NumDocs)
	switch st.Backend {
	case archive.RLZ:
		fmt.Printf("codec:       %s\n", st.Codec)
		fmt.Printf("dictionary:  %d bytes\n", st.DictLen)
	case archive.Block:
		fmt.Printf("algorithm:   %s\n", st.Algorithm)
		fmt.Printf("blocks:      %d\n", st.NumBlocks)
	}
	fmt.Printf("archive:     %d bytes\n", st.Size)
	fmt.Printf("decoded:     %d bytes\n", raw)
	if raw > 0 {
		fmt.Printf("ratio:       %.2f%%\n", 100*float64(st.Size)/float64(raw))
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required)")
	workers := fs.Int("workers", 0, "decode concurrency; 0 means GOMAXPROCS")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *arc == "" {
		return fmt.Errorf("verify: -a is required")
	}
	r, err := archive.Open(*arc)
	if err != nil {
		return err
	}
	defer r.Close()
	n := *workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	var (
		deleted int64
		badID   = -1
		badErr  error
		numDocs = r.NumDocs()
	)
	record := func(id int, err error) {
		// A live collection's tombstoned ids return not-found by design:
		// they are verified absences, not decode failures.
		if errors.Is(err, collection.ErrDeleted) {
			deleted++
			return
		}
		if badID < 0 || id < badID {
			badID, badErr = id, err
		}
	}
	if br, ok := archive.AsBatchReader(r); ok {
		// Batched verification: sequential id chunks decode each
		// compressed block exactly once instead of once per resident
		// document, with the blocks of a chunk fanned across the workers.
		const chunk = 8192
		ids := make([]int, chunk)
		for base := 0; base < numDocs && badID < 0; base += chunk {
			hi := base + chunk
			if hi > numDocs {
				hi = numDocs
			}
			ids = ids[:hi-base]
			for i := range ids {
				ids[i] = base + i
			}
			br.GetBatch(ids, n, func(i int, doc []byte, err error) {
				if err != nil {
					record(ids[i], err)
				}
			})
		}
	} else {
		// Per-document parallel decode: the Reader concurrency contract
		// makes a shared reader safe, so verification scales with cores.
		// Each worker reuses one buffer (the GetAppend zero-allocation
		// path) rather than materializing documents it will discard.
		var (
			next      atomic.Int64
			deltombed atomic.Int64
			mu        sync.Mutex
		)
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var buf []byte
				for {
					id := int(next.Add(1)) - 1
					if id >= numDocs {
						return
					}
					var err error
					if buf, err = r.GetAppend(buf[:0], id); err != nil {
						if errors.Is(err, collection.ErrDeleted) {
							deltombed.Add(1)
							continue
						}
						mu.Lock()
						if badID < 0 || id < badID {
							badID, badErr = id, err
						}
						mu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		deleted += deltombed.Load()
	}
	if badErr != nil {
		return fmt.Errorf("document %d: %w", badID, badErr)
	}
	if deleted > 0 {
		fmt.Printf("%s: %d documents decode cleanly, %d tombstoned (%s backend)\n", *arc, int64(numDocs)-deleted, deleted, r.Stats().Backend)
		return nil
	}
	fmt.Printf("%s: %d documents decode cleanly (%s backend)\n", *arc, numDocs, r.Stats().Backend)
	return nil
}
