package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rlz/internal/archive"
	"rlz/internal/collection"
	"rlz/internal/rlz"
	"rlz/internal/units"
)

// cmdAppend appends documents to a live collection, creating the
// collection on first use. Appended documents are readable immediately —
// rlz get/cat/grep and a running rlzd see them without any rebuild —
// and get compressed later by `rlz compact` (or rlzd's auto-compactor).
func cmdAppend(args []string) error {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	dir := fs.String("a", "", "collection directory (required; created if absent)")
	srcDir := fs.String("dir", "", "treat every regular file under this directory as a document")
	warcPath := fs.String("warc", "", "read documents from a warc collection file")
	syncAppends := fs.Bool("sync", false, "fsync every append before acknowledging it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("append: -a is required")
	}

	var src archive.DocSource
	switch {
	case *warcPath != "":
		var err error
		if src, err = archive.FromWARC(*warcPath); err != nil {
			return err
		}
	default:
		paths := fs.Args()
		if *srcDir != "" {
			var err error
			if paths, err = collectFiles(*srcDir); err != nil {
				return err
			}
		}
		if len(paths) == 0 {
			return fmt.Errorf("append: no input documents")
		}
		src = archive.FromFiles(paths)
	}
	defer func() {
		if c, ok := src.(io.Closer); ok {
			_ = c.Close()
		}
	}()

	if _, err := os.Stat(filepath.Join(*dir, collection.ManifestName)); err != nil {
		if err := collection.Init(*dir); err != nil {
			return err
		}
		fmt.Printf("%s: initialized empty collection\n", *dir)
	}
	col, err := collection.Open(*dir, collection.Options{SyncAppends: *syncAppends})
	if err != nil {
		return err
	}
	defer col.Close()

	first, count := -1, 0
	var bytes int64
	for {
		d, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		id, err := col.Append(d.Body)
		if err != nil {
			if d.Name != "" {
				return fmt.Errorf("appending %s: %w", d.Name, err)
			}
			return fmt.Errorf("appending document %d: %w", count, err)
		}
		if first < 0 {
			first = id
		}
		count++
		bytes += int64(len(d.Body))
	}
	if count == 0 {
		return fmt.Errorf("append: no input documents")
	}
	fmt.Printf("%s: appended %d docs (%d bytes), ids %d..%d, generation %d\n",
		*dir, count, bytes, first, first+count-1, col.Generation())
	return nil
}

// cmdCompact seals the open segment and drains every raw segment into
// RLZ archives built against the collection's shared dictionary.
func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("a", "", "collection directory (required)")
	codecName := fs.String("codec", "ZV", "rlz pair codec for compacted segments")
	dictSize := fs.String("dict", "0", "dictionary size when sampling a new one (0 means 1% of the compacted bytes)")
	sampleSize := fs.String("sample", "1KB", "dictionary sample length when sampling a new one")
	factQ := fs.Int("factq", 0, "factorization jump-table q-gram width (1-3); 0 means 2")
	noJump := fs.Bool("nojump", false, "disable the factorization jump table")
	workers := fs.Int("workers", 0, "build concurrency; 0 means GOMAXPROCS")
	adapt := fs.Bool("adapt", false, "learn: evict cold dictionary regions and re-sample from the drained documents, adopting the result when the trial gain clears -gain")
	evict := fs.Float64("evict", 0, "fraction of dictionary regions an adaptive re-sample evicts, coldest first (0 means 0.25)")
	gain := fs.Float64("gain", 0, "relative encoded-byte saving required to adopt an adaptive dictionary (0 means 0.02; negative adopts always)")
	upgradeStale := fs.Bool("upgrade-stale", false, "also rewrite RLZ segments built against older dictionary generations, retiring them")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("compact: -a is required")
	}
	if *factQ < 0 || *factQ > 3 {
		return fmt.Errorf("compact: -factq %d out of range (want 1-3, or 0 for the default)", *factQ)
	}
	codec, err := rlz.CodecByName(*codecName)
	if err != nil {
		return err
	}
	ds, err := units.ParseSize(*dictSize)
	if err != nil {
		return err
	}
	ss, err := units.ParseSize(*sampleSize)
	if err != nil {
		return err
	}

	col, err := collection.Open(*dir, collection.Options{})
	if err != nil {
		return err
	}
	defer col.Close()
	res, err := col.Compact(collection.CompactOptions{
		Codec:         codec,
		DictSize:      ds,
		SampleSize:    ss,
		Adapt:         *adapt,
		EvictFraction: *evict,
		MinRatioGain:  *gain,
		UpgradeStale:  *upgradeStale,
		Factorizer:    rlz.FactorizerOptions{Q: *factQ, DisableJump: *noJump},
		Workers:       *workers,
	})
	if err != nil {
		return err
	}
	if res.Compacted == 0 {
		fmt.Printf("%s: nothing to compact (generation %d)\n", *dir, col.Generation())
		return nil
	}
	ratio := 0.0
	if res.BytesBefore > 0 {
		ratio = 100 * float64(res.BytesAfter) / float64(res.BytesBefore)
	}
	dictNote := ""
	if res.Relearned {
		dictNote = fmt.Sprintf(", adopted dictionary %d", res.Dict)
	} else if res.Dict != 0 {
		dictNote = fmt.Sprintf(", dictionary %d", res.Dict)
	}
	fmt.Printf("%s: compacted %d segments into %d (%d docs, %d -> %d bytes, %.2f%%%s), generation %d\n",
		*dir, res.Compacted, len(res.NewSegments), res.Docs, res.BytesBefore, res.BytesAfter, ratio, dictNote, res.Generation)
	return nil
}

// cmdGC removes files in the collection directory superseded by the
// current generation: old segments replaced by compaction, stale .tmp
// and .lens leftovers from crashes.
func cmdGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	dir := fs.String("a", "", "collection directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("gc: -a is required")
	}
	col, err := collection.Open(*dir, collection.Options{})
	if err != nil {
		return err
	}
	defer col.Close()
	removed, err := col.GC()
	if err != nil {
		return err
	}
	for _, name := range removed {
		fmt.Printf("removed %s\n", name)
	}
	fmt.Printf("%s: %d files removed (generation %d)\n", *dir, len(removed), col.Generation())
	return nil
}
