package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGrep(t *testing.T) {
	dir := t.TempDir()
	docs := map[string]string{
		"a.txt": "alpha needle beta",
		"b.txt": "no hits here",
		"c.txt": "needle at start and needle at end",
	}
	for name, body := range docs {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	arc := filepath.Join(t.TempDir(), "g.rlz")
	if err := cmdBuild([]string{"-o", arc, "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGrep([]string{"-a", arc, "needle"}); err != nil {
		t.Fatalf("grep: %v", err)
	}
	if err := cmdGrep([]string{"-a", arc, "-n", "1", "needle"}); err != nil {
		t.Fatalf("limited grep: %v", err)
	}
	if err := cmdGrep([]string{"-a", arc}); err == nil {
		t.Error("grep without pattern accepted")
	}
	if err := cmdGrep([]string{"needle"}); err == nil {
		t.Error("grep without archive accepted")
	}
}
