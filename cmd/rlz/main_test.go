package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rlz/internal/archive"
	"rlz/internal/store"
)

// writeDocs lays out a small document tree and returns the dir and the
// expected contents in lexical path order.
func writeDocs(t *testing.T) (string, [][]byte) {
	t.Helper()
	dir := t.TempDir()
	var docs [][]byte
	for i := 0; i < 12; i++ {
		body := []byte(fmt.Sprintf("<html><body>document %d — shared boilerplate text "+
			"shared boilerplate text</body></html>", i))
		path := filepath.Join(dir, fmt.Sprintf("doc%02d.html", i))
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, body)
	}
	return dir, docs
}

func TestBuildAndReadBack(t *testing.T) {
	dir, docs := writeDocs(t)
	arc := filepath.Join(t.TempDir(), "out.rlz")
	if err := cmdBuild([]string{"-o", arc, "-dir", dir, "-codec", "ZV", "-dict", "256B", "-sample", "64B"}); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenFile(arc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumDocs() != len(docs) {
		t.Fatalf("NumDocs = %d, want %d", r.NumDocs(), len(docs))
	}
	for i, want := range docs {
		got, err := r.Get(i)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Get(%d): %q, %v", i, got, err)
		}
	}
}

func TestBuildExplicitFiles(t *testing.T) {
	dir, docs := writeDocs(t)
	arc := filepath.Join(t.TempDir(), "out.rlz")
	args := []string{"-o", arc, "-codec", "US"}
	args = append(args, filepath.Join(dir, "doc00.html"), filepath.Join(dir, "doc03.html"))
	if err := cmdBuild(args); err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenFile(arc)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Get(1)
	if err != nil || !bytes.Equal(got, docs[3]) {
		t.Fatalf("Get(1) = %q, %v", got, err)
	}
}

func TestBuildErrors(t *testing.T) {
	if err := cmdBuild([]string{"-o", ""}); err == nil {
		t.Error("missing -o accepted")
	}
	if err := cmdBuild([]string{"-o", filepath.Join(t.TempDir(), "x.rlz")}); err == nil {
		t.Error("no inputs accepted")
	}
	if err := cmdBuild([]string{"-o", "x.rlz", "-codec", "QQ", "some-file"}); err == nil {
		t.Error("bad codec accepted")
	}
	if err := cmdBuild([]string{"-o", "x.rlz", "-dict", "wat", "some-file"}); err == nil {
		t.Error("bad dict size accepted")
	}
	if err := cmdBuild([]string{"-o", filepath.Join(t.TempDir(), "x.rlz"), "/nonexistent/file"}); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestVerifyAndStats(t *testing.T) {
	dir, _ := writeDocs(t)
	arc := filepath.Join(t.TempDir(), "out.rlz")
	if err := cmdBuild([]string{"-o", arc, "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-a", arc}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := cmdStats([]string{"-a", arc}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	// Corrupt a document record (not the dictionary — plain dictionary
	// bytes carry no redundancy to check, by design): verify must fail
	// because the ZV codec's zlib-coded position stream is checksummed.
	r, err := store.OpenFile(arc)
	if err != nil {
		t.Fatal(err)
	}
	off, _, err := r.Extent(0)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	data, err := os.ReadFile(arc)
	if err != nil {
		t.Fatal(err)
	}
	data[off+8] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.rlz")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-a", bad}); err == nil {
		t.Error("verify accepted a corrupted archive")
	}
}

func TestGetAndCatArgErrors(t *testing.T) {
	if err := cmdGet([]string{"-a", "", "-id", "0"}); err == nil {
		t.Error("get without archive accepted")
	}
	if err := cmdGet([]string{"-a", "x.rlz"}); err == nil {
		t.Error("get without id accepted")
	}
	if err := cmdCat([]string{}); err == nil {
		t.Error("cat without archive accepted")
	}
	if err := cmdGet([]string{"-a", "/nonexistent.rlz", "-id", "0"}); err == nil {
		t.Error("get on missing archive accepted")
	}
}

// TestBuildEveryBackendEndToEnd is the CLI half of the acceptance
// criteria: build with -backend {rlz,block,raw}, then get/verify/stats
// work on each without being told the backend.
func TestBuildEveryBackendEndToEnd(t *testing.T) {
	dir, docs := writeDocs(t)
	for _, backend := range []string{"rlz", "block", "raw"} {
		arc := filepath.Join(t.TempDir(), "out."+backend)
		args := []string{"-o", arc, "-backend", backend, "-dir", dir}
		if backend == "block" {
			args = append(args, "-block", "128B", "-alg", "zlib")
		}
		if err := cmdBuild(args); err != nil {
			t.Fatalf("%s: build: %v", backend, err)
		}
		r, err := archive.Open(arc)
		if err != nil {
			t.Fatalf("%s: open: %v", backend, err)
		}
		if got := string(r.Stats().Backend); got != backend {
			t.Fatalf("auto-detected %q, want %q", got, backend)
		}
		for i, want := range docs {
			got, err := r.Get(i)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("%s: Get(%d): %q, %v", backend, i, got, err)
			}
		}
		r.Close()
		if err := cmdVerify([]string{"-a", arc}); err != nil {
			t.Fatalf("%s: verify: %v", backend, err)
		}
		if err := cmdStats([]string{"-a", arc}); err != nil {
			t.Fatalf("%s: stats: %v", backend, err)
		}
		if err := cmdGet([]string{"-a", arc, "-id", "3"}); err != nil {
			t.Fatalf("%s: get: %v", backend, err)
		}
	}
}

func TestBuildBackendErrors(t *testing.T) {
	dir, _ := writeDocs(t)
	arc := filepath.Join(t.TempDir(), "x.arc")
	if err := cmdBuild([]string{"-o", arc, "-backend", "zip", "-dir", dir}); err == nil {
		t.Error("unknown backend accepted")
	}
	if err := cmdBuild([]string{"-o", arc, "-backend", "block", "-alg", "brotli", "-dir", dir}); err == nil {
		t.Error("unknown block algorithm accepted")
	}
	if err := cmdBuild([]string{"-o", arc, "-backend", "block", "-block", "wat", "-dir", dir}); err == nil {
		t.Error("bad block size accepted")
	}
}

// TestGrepRequiresRLZBackend: grep is a capability of the RLZ backend.
func TestGrepRequiresRLZBackend(t *testing.T) {
	dir, _ := writeDocs(t)
	arc := filepath.Join(t.TempDir(), "out.raw")
	if err := cmdBuild([]string{"-o", arc, "-backend", "raw", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGrep([]string{"-a", arc, "boilerplate"}); err == nil {
		t.Error("grep on a raw archive accepted")
	}
}

func TestGetOutOfRangeID(t *testing.T) {
	dir, _ := writeDocs(t)
	arc := filepath.Join(t.TempDir(), "out.rlz")
	if err := cmdBuild([]string{"-o", arc, "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGet([]string{"-a", arc, "-id", "9999"}); err == nil {
		t.Error("out-of-range id accepted")
	}
}

// TestBuildShardedEndToEnd: -shards N writes a shard directory that
// every read command opens like a single archive (directory or manifest
// path), for all three backends.
func TestBuildShardedEndToEnd(t *testing.T) {
	dir, docs := writeDocs(t)
	for _, backend := range []string{"rlz", "block", "raw"} {
		out := filepath.Join(t.TempDir(), "set."+backend)
		args := []string{"-o", out, "-backend", backend, "-shards", "3", "-dir", dir}
		if backend == "block" {
			args = append(args, "-block", "128B")
		}
		if err := cmdBuild(args); err != nil {
			t.Fatalf("%s: build: %v", backend, err)
		}
		r, err := archive.Open(out)
		if err != nil {
			t.Fatalf("%s: open dir: %v", backend, err)
		}
		if got := string(r.Stats().Backend); got != backend {
			t.Fatalf("auto-detected %q, want %q", got, backend)
		}
		if r.NumDocs() != len(docs) {
			t.Fatalf("%s: NumDocs = %d, want %d", backend, r.NumDocs(), len(docs))
		}
		// Round-robin routing serves shard 0's documents first; check
		// the full content set matches regardless of order.
		seen := map[string]int{}
		for i := 0; i < r.NumDocs(); i++ {
			doc, err := r.Get(i)
			if err != nil {
				t.Fatalf("%s: Get(%d): %v", backend, i, err)
			}
			seen[string(doc)]++
		}
		for _, want := range docs {
			if seen[string(want)] != 1 {
				t.Fatalf("%s: document %q served %d times", backend, want[:30], seen[string(want)])
			}
		}
		r.Close()
		if err := cmdVerify([]string{"-a", out}); err != nil {
			t.Fatalf("%s: verify: %v", backend, err)
		}
		if err := cmdStats([]string{"-a", out}); err != nil {
			t.Fatalf("%s: stats: %v", backend, err)
		}
		// The manifest path works as well as the directory.
		if err := cmdGet([]string{"-a", filepath.Join(out, "MANIFEST"), "-id", "0"}); err != nil {
			t.Fatalf("%s: get via manifest: %v", backend, err)
		}
	}
}

// TestGrepOverShardSet: compressed-domain search spans shards with
// globally remapped ids.
func TestGrepOverShardSet(t *testing.T) {
	dir, _ := writeDocs(t)
	out := filepath.Join(t.TempDir(), "set")
	if err := cmdBuild([]string{"-o", out, "-shards", "4", "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGrep([]string{"-a", out, "boilerplate"}); err != nil {
		t.Fatalf("grep over shard set: %v", err)
	}
}
