package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolCrossPackageFacts drives the real `go vet -vettool`
// protocol end to end: a scratch module with a dep package that decodes
// and clamps a size and an app package that allocates from it. With the
// clamp in place the run is silent — the fact that dep's result is
// clean travels to app's compilation unit as a gob vetx file. With the
// clamp removed, the same allocation is flagged. That asymmetry is the
// proof that facts actually flow between units, not just within one
// standalone load.
func TestVettoolCrossPackageFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet twice")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}

	tool := filepath.Join(t.TempDir(), "rlzvet")
	build := exec.Command(goTool, "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rlzvet: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vettoolcheck\n\ngo 1.24\n")
	write("dep/dep.go", `package dep

import "encoding/binary"

func DecodeSize(src []byte) (int, bool) {
	v, n := binary.Uvarint(src)
	if n <= 0 || v > uint64(len(src)-n) {
		return 0, false
	}
	return int(v), true
}
`)
	write("app/app.go", `package app

import "vettoolcheck/dep"

func Build(src []byte) []byte {
	n, ok := dep.DecodeSize(src)
	if !ok {
		return nil
	}
	return make([]byte, n)
}
`)

	vet := func() (string, error) {
		cmd := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
		cmd.Dir = mod
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		return out.String(), err
	}

	if out, err := vet(); err != nil {
		t.Fatalf("clamped dep: go vet failed:\n%s", out)
	}

	// Remove the clamp in dep; only the dep package's source changes,
	// but the finding must appear in app — via the updated vetx facts.
	write("dep/dep.go", `package dep

import "encoding/binary"

func DecodeSize(src []byte) (int, bool) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, false
	}
	return int(v), true
}
`)
	out, err := vet()
	if err == nil {
		t.Fatalf("unclamped dep: go vet succeeded, want alloccap finding")
	}
	if !strings.Contains(out, "alloccap") || !strings.Contains(out, filepath.Join("app", "app.go")) {
		t.Fatalf("unclamped dep: findings missing alloccap report in app:\n%s", out)
	}
}
