package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"rlz/internal/analysis"
)

// TestPrintJSON pins the machine-readable finding shape CI consumes:
// flat objects with file/line/col/analyzer/message, and an empty array
// (never null) when there are no findings.
func TestPrintJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := printJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var empty []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil {
		t.Fatalf("no-findings output is not a JSON array: %v\n%s", err, buf.String())
	}
	if empty == nil || len(empty) != 0 {
		t.Fatalf("no-findings output = %q, want []", buf.String())
	}

	buf.Reset()
	findings := []analysis.Finding{{
		Analyzer: "alloccap",
		Pos:      token.Position{Filename: "internal/warc/warc.go", Line: 116, Column: 23},
		Message:  "allocation size decoded from untrusted input reaches make without a clamp",
	}}
	if err := printJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want := jsonFinding{
		File: "internal/warc/warc.go", Line: 116, Col: 23,
		Analyzer: "alloccap",
		Message:  "allocation size decoded from untrusted input reaches make without a clamp",
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("got %+v, want [%+v]", got, want)
	}
}
