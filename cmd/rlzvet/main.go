// Command rlzvet runs the repository's invariant analyzers (refpair,
// poolescape, zerocopy, lockguard, hotalloc, errclose, alloccap,
// fsyncorder, atomicmix) over Go packages. It works two ways:
//
//	rlzvet [-json] ./...              standalone, like a focused vet
//	go vet -vettool=$(which rlzvet) ./...   as the go vet backend
//
// In vettool mode it speaks the go vet unit-checker protocol: the go
// command hands it one package at a time as a JSON config file,
// facts flow between packages as gob files next to the build cache —
// the annotation index plus the interprocedural function summaries the
// alloccap/fsyncorder/atomicmix analyzers consume — and results are
// cached like any other vet run.
//
// With -json, standalone mode prints findings as a JSON array of
// {file,line,col,analyzer,message} objects on stdout instead of the
// vet-style lines on stderr; CI turns these into source annotations.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rlz/internal/analysis"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		// The go command probes for supported analyzer flags before the
		// first real run; this tool takes none.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitchecker(args[0]))
	}
	if len(args) == 1 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help") {
		printHelp()
		return
	}
	asJSON := false
	patterns := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			asJSON = true
			continue
		}
		patterns = append(patterns, a)
	}
	os.Exit(standalone(patterns, asJSON))
}

func printHelp() {
	fmt.Println("rlzvet checks this repository's hand-maintained invariants.\n\nAnalyzers:")
	for _, a := range analysis.Analyzers() {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Println("\nUsage: rlzvet [-json] [packages]   (default ./...)")
	fmt.Println("   or: go vet -vettool=$(which rlzvet) [packages]")
}

// printVersion implements the -V=full handshake the go command uses to
// fingerprint vet tools for its action cache: the reported version
// must change when the binary does, so it is the binary's own hash.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			_ = f.Close()
		}
	}
	fmt.Printf("rlzvet version devel buildID=%x\n", h.Sum(nil)[:16])
}

// standalone loads, collects annotations and interprocedural summaries
// across every matched package, and runs the full suite, printing
// findings to stderr (or a JSON array on stdout with -json).
func standalone(patterns []string, asJSON bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlzvet:", err)
		return 1
	}
	idx := analysis.NewIndex()
	var findings []analysis.Finding
	for _, p := range pkgs {
		findings = append(findings, analysis.CollectAnnotations(p.Fset, p.ImportPath, p.Files, idx)...)
	}
	// go list -deps order is dependencies-first, so by the time a
	// package's summaries are computed its callees' are already in idx.
	for _, p := range pkgs {
		analysis.ComputeSummaries(p, idx)
	}
	for _, p := range pkgs {
		fs, err := analysis.RunAnalyzers(p, analysis.Analyzers(), idx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlzvet:", err)
			return 1
		}
		findings = append(findings, fs...)
	}
	if asJSON {
		if err := printJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "rlzvet:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// jsonFinding is the machine-readable shape -json emits, one object per
// finding. Kept flat and lower-case so CI shell can consume it with any
// JSON tool.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(w io.Writer, findings []analysis.Finding) error {
	cwd, _ := os.Getwd()
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		// Repo-relative paths so CI annotations land on diff lines.
		if cwd != "" && filepath.IsAbs(file) {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, jsonFinding{
			File:     file,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// vetConfig is the subset of the go command's unit-checker config this
// tool consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlzvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rlzvet: parsing", cfgFile+":", err)
		return 1
	}

	fset := token.NewFileSet()
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles = append(goFiles, f)
	}
	files, err := analysis.ParseFiles(fset, cfg.Dir, goFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, analysis.NewIndex())
		}
		fmt.Fprintln(os.Stderr, "rlzvet:", err)
		return 1
	}

	// This package's own annotations become its exported facts; the
	// merged view (deps' facts + own) drives the analyzers.
	own := analysis.NewIndex()
	directiveFindings := analysis.CollectAnnotations(fset, cfg.ImportPath, files, own)
	merged := analysis.NewIndex()
	for _, vetx := range cfg.PackageVetx {
		dep, err := readVetx(vetx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rlzvet:", err)
			return 1
		}
		merged.Merge(dep)
	}
	merged.Merge(own)

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	tpkg, info, err := analysis.TypeCheck(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, own)
		}
		fmt.Fprintln(os.Stderr, "rlzvet:", err)
		return 1
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	// Summaries for this package build on the deps' summaries already in
	// merged (the go command schedules dependencies first); the package's
	// own facts join the vetx export so dependents see them.
	own.Merge(analysis.ComputeSummaries(pkg, merged))
	findings, err := analysis.RunAnalyzers(pkg, analysis.Analyzers(), merged)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlzvet:", err)
		return 1
	}
	findings = append(directiveFindings, findings...)

	if rc := writeVetx(cfg.VetxOutput, own); rc != 0 {
		return rc
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func writeVetx(path string, idx *analysis.Index) int {
	if path == "" {
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlzvet:", err)
		return 1
	}
	if err := gob.NewEncoder(f).Encode(idx); err != nil {
		_ = f.Close()
		fmt.Fprintln(os.Stderr, "rlzvet:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rlzvet:", err)
		return 1
	}
	return 0
}

func readVetx(path string) (*analysis.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	idx := analysis.NewIndex()
	if err := gob.NewDecoder(f).Decode(idx); err != nil && err != io.EOF {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return idx, nil
}
