// Command rlzbench regenerates the tables and figures of the paper's
// evaluation section on synthetic collections.
//
// Usage:
//
//	rlzbench -all                 # every table and figure, paper order
//	rlzbench -run "Table 4"       # one experiment
//	rlzbench -run "Figure 3"
//	rlzbench -quick -all          # miniature scale (seconds, for smoke tests)
//	rlzbench -gov 64MB -wiki 32MB -all
//	rlzbench -json -run "Table 4" # machine-readable results
//
// Output is plain aligned text, one block per experiment, in the same
// row/column layout as the paper; -csv and -json switch to
// machine-readable forms (-json feeds perf-trajectory records like
// BENCH_factorize.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rlz/internal/experiment"
	"rlz/internal/units"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every table and figure")
		run    = flag.String("run", "", `experiment to run, e.g. "Table 4" or "Figure 3"`)
		quick  = flag.Bool("quick", false, "miniature configuration (smoke test)")
		gov    = flag.String("gov", "", "override GOV2 stand-in size, e.g. 64MB")
		wiki   = flag.String("wiki", "", "override Wikipedia stand-in size, e.g. 32MB")
		seed   = flag.Int64("seed", 0, "override random seed")
		listIt = flag.Bool("list", false, "list available experiments")
		asCSV  = flag.Bool("csv", false, "emit CSV instead of aligned text")
		asJSON = flag.Bool("json", false, "emit machine-readable JSON instead of aligned text")
	)
	flag.Parse()

	cfg := experiment.Default
	if *quick {
		cfg = experiment.Quick
	}
	if *gov != "" {
		n, err := units.ParseSize(*gov)
		if err != nil {
			fatal(err)
		}
		cfg.GovBytes = n
	}
	if *wiki != "" {
		n, err := units.ParseSize(*wiki)
		if err != nil {
			fatal(err)
		}
		cfg.WikiBytes = n
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	switch {
	case *listIt:
		for _, r := range experiment.All {
			fmt.Println(r.ID)
		}
	case *all && *asJSON:
		// One valid JSON document: an array of table objects, not a
		// concatenation machine consumers would choke on.
		tables := make([]*experiment.Table, 0, len(experiment.All))
		for _, r := range experiment.All {
			tab, err := r.Run(cfg)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", r.ID, err))
			}
			tables = append(tables, tab)
		}
		if err := experiment.WriteJSONList(os.Stdout, tables); err != nil {
			fatal(err)
		}
	case *all:
		for _, r := range experiment.All {
			runOne(r, cfg, *asCSV, *asJSON)
		}
	case *run != "":
		r, ok := experiment.ByID(*run)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", *run))
		}
		runOne(r, cfg, *asCSV, *asJSON)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(r experiment.Runner, cfg experiment.Config, asCSV, asJSON bool) {
	start := time.Now()
	tab, err := r.Run(cfg)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", r.ID, err))
	}
	switch {
	case asJSON:
		if err := tab.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	case asCSV:
		if err := tab.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		tab.Print(os.Stdout)
		fmt.Printf("  (regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlzbench:", err)
	os.Exit(1)
}
