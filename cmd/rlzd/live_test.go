package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"rlz/internal/archive"
	"rlz/internal/collection"
	"rlz/internal/serve"
	"rlz/internal/workload"
)

// newLiveServer spins up the rlzd handler over a fresh live collection.
func newLiveServer(t *testing.T, cacheDocs int) (*httptest.Server, *serve.Server, *collection.Collection) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "live")
	if err := collection.Init(dir); err != nil {
		t.Fatal(err)
	}
	r, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	col, ok := collection.FromReader(r)
	if !ok {
		t.Fatal("archive.Open did not yield a collection")
	}
	srv := serve.New(r, serve.Options{CacheDocs: cacheDocs, Workers: 4})
	ts := httptest.NewServer(newMux(srv, col, muxOptions{maxBatch: 64}))
	t.Cleanup(ts.Close)
	return ts, srv, col
}

func httpGetDoc(t *testing.T, ts *httptest.Server, id int) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/doc/" + strconv.Itoa(id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestLiveCollectionLifecycle is the acceptance test of PR 5: a document
// appended over HTTP to a running rlzd is readable immediately without a
// restart; after compaction it is served from an RLZ segment with
// byte-identical content under the same id; deleted ids return 404
// across generations. Appends race a closed-loop reader workload
// throughout, so `go test -race` exercises the swap path under load.
func TestLiveCollectionLifecycle(t *testing.T) {
	docs := makeDocs(120, 11)
	ts, _, col := newLiveServer(t, 32)
	hg := &workload.HTTPGetter{BaseURL: ts.URL, Client: ts.Client()}

	// Phase 1: append the first half over HTTP; each document must be
	// readable immediately under its returned id.
	for i := 0; i < 60; i++ {
		id, err := hg.Append(docs[i])
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if id != i {
			t.Fatalf("append %d got id %d", i, id)
		}
		if code, body := httpGetDoc(t, ts, id); code != http.StatusOK || !bytes.Equal(body, docs[i]) {
			t.Fatalf("immediate read of %d: code %d, %d bytes", id, code, len(body))
		}
	}

	// Phase 2: readers hammer the served prefix while the second half is
	// appended and a compaction swaps generations mid-traffic.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var buf []byte
			for i := seed; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := i % 60
				var err error
				buf, err = hg.GetAppend(buf[:0], id)
				if err != nil {
					t.Errorf("read %d under load: %v", id, err)
					return
				}
				if !bytes.Equal(buf, docs[id]) {
					t.Errorf("read %d under load: wrong bytes", id)
					return
				}
			}
		}(w * 17)
	}
	for i := 60; i < 120; i++ {
		if _, err := hg.Append(docs[i]); err != nil {
			t.Fatalf("append %d under load: %v", i, err)
		}
		if i == 90 {
			resp, err := ts.Client().Post(ts.URL+"/compact", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /compact = %d: %s", resp.StatusCode, body)
			}
			var res collection.CompactResult
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatal(err)
			}
			if res.Docs != 91 || res.Compacted == 0 {
				t.Fatalf("compaction result %+v", res)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Phase 3: compact the remainder; every document must now be served
	// from an RLZ segment, byte-identical, same ids.
	resp, err := ts.Client().Post(ts.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	info := col.Info()
	if info.PendingDocs != 0 {
		t.Fatalf("pending docs after full compaction: %+v", info)
	}
	for _, seg := range info.Segments {
		if seg.Backend != archive.RLZ {
			t.Fatalf("segment %s still %s", seg.Path, seg.Backend)
		}
	}
	for i, want := range docs {
		if code, body := httpGetDoc(t, ts, i); code != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("post-compaction read of %d: code %d", i, code)
		}
	}

	// Phase 4: deletes 404 immediately (cache invalidated) and across
	// the next compaction's generation swap.
	victim := 17
	if code, _ := httpGetDoc(t, ts, victim); code != http.StatusOK {
		t.Fatalf("victim unreadable before delete: %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/doc/"+strconv.Itoa(victim), nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	if code, _ := httpGetDoc(t, ts, victim); code != http.StatusNotFound {
		t.Fatalf("deleted doc served: %d", code)
	}
	// Deleting again 404s; deleting out-of-range 404s.
	dresp, _ = ts.Client().Do(req)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE = %d", dresp.StatusCode)
	}
	// Append + compact once more: the tombstone must hold in the new
	// generation too.
	if _, err := hg.Append([]byte("one more")); err != nil {
		t.Fatal(err)
	}
	if _, err := col.Compact(collection.CompactOptions{}); err != nil && !errors.Is(err, collection.ErrCompacting) {
		t.Fatal(err)
	}
	if code, _ := httpGetDoc(t, ts, victim); code != http.StatusNotFound {
		t.Fatalf("deleted doc resurrected after compaction: %d", code)
	}

	// Phase 5: /stats carries the generation breakdown.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Live == nil {
		t.Fatal("stats missing live breakdown")
	}
	if st.Live.Generation == 0 || len(st.Live.Segments) == 0 || st.Live.Tombstones != 1 {
		t.Fatalf("live stats %+v", st.Live)
	}
	if st.Backend != string(archive.Live) {
		t.Fatalf("backend = %q", st.Backend)
	}
}

// TestStatsDictBlock: after a compaction, /stats carries a per-generation
// dictionary block — id, file size, segments built against it, and the
// generation's compression ratio — under the JSON names the endpoint
// promises.
func TestStatsDictBlock(t *testing.T) {
	docs := makeDocs(40, 9)
	ts, _, _ := newLiveServer(t, 0)
	hg := &workload.HTTPGetter{BaseURL: ts.URL, Client: ts.Client()}
	for i, d := range docs {
		if _, err := hg.Append(d); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	resp, err := ts.Client().Post(ts.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /compact = %d", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	raw, _ := io.ReadAll(sresp.Body)
	// Pin the JSON field names first, then check values through the
	// typed struct.
	var shape struct {
		Live struct {
			Dicts []map[string]any `json:"dicts"`
		} `json:"live"`
	}
	if err := json.Unmarshal(raw, &shape); err != nil {
		t.Fatal(err)
	}
	if len(shape.Live.Dicts) != 1 {
		t.Fatalf("stats dicts = %d entries, want 1: %s", len(shape.Live.Dicts), raw)
	}
	for _, key := range []string{
		"id", "path", "size_bytes", "segments", "raw_bytes",
		"compressed_bytes", "ratio_percent", "unused_percent",
	} {
		if _, ok := shape.Live.Dicts[0][key]; !ok {
			t.Errorf("dict block missing key %q", key)
		}
	}
	var st statsResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	d := st.Live.Dicts[0]
	if d.ID == 0 || d.Path == "" || d.Size <= 0 {
		t.Errorf("dict identity %+v not plausible", d)
	}
	if d.Segments == 0 || d.Raw <= 0 || d.Compressed <= 0 || d.RatioPercent <= 0 {
		t.Errorf("dict attribution %+v not plausible", d)
	}
	// The compaction just ran against this dictionary, so usage was
	// observed: unused share is a real percentage, not the -1 sentinel.
	if d.UnusedPercent < 0 || d.UnusedPercent > 100 {
		t.Errorf("unused_percent = %v, want [0,100]", d.UnusedPercent)
	}
}

// TestMixedWorkloadAgainstLiveDaemon drives the daemon with the mixed
// read/append closed-loop generator — the load shape a live store
// exists for — and proves every appended document landed readable.
func TestMixedWorkloadAgainstLiveDaemon(t *testing.T) {
	docs := makeDocs(80, 12)
	ts, _, col := newLiveServer(t, 16)
	hg := &workload.HTTPGetter{BaseURL: ts.URL, Client: ts.Client()}
	// Seed a readable prefix.
	for i := 0; i < 40; i++ {
		if _, err := hg.Append(docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ids := workload.QueryLog(40, 400, 7)
	res := workload.RunMixed(hg, hg, ids, docs[40:], 8)
	if res.Errors != 0 {
		t.Fatalf("mixed run: %+v", res)
	}
	if res.Reads != 400 || res.Appends != 40 {
		t.Fatalf("mixed run op counts: %+v", res)
	}
	if col.NumDocs() != 80 {
		t.Fatalf("NumDocs = %d, want 80", col.NumDocs())
	}
	// Every appended document is readable; the generator's appends are
	// concurrent so ids 40..79 hold SOME permutation of docs[40:].
	got := map[string]int{}
	for i := 40; i < 80; i++ {
		code, body := httpGetDoc(t, ts, i)
		if code != http.StatusOK {
			t.Fatalf("doc %d: code %d", i, code)
		}
		got[string(body)]++
	}
	for i := 40; i < 80; i++ {
		if got[string(docs[i])] != 1 {
			t.Fatalf("appended doc %d served %d times", i, got[string(docs[i])])
		}
	}
}

// TestWriteEndpointsReadOnlyArchive: the write API answers 405 on a
// static archive instead of panicking or pretending.
func TestWriteEndpointsReadOnlyArchive(t *testing.T) {
	docs := makeDocs(5, 13)
	ts, _ := newTestServer(t, docs, archive.Options{Backend: archive.Raw}, 0, 16)
	cases := []struct {
		method, path string
	}{
		{http.MethodPost, "/append"},
		{http.MethodPost, "/append/batch"},
		{http.MethodDelete, "/doc/1"},
		{http.MethodPost, "/compact"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte("x")))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestAppendTooLarge: the append body cap answers 413.
func TestAppendTooLarge(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "live2")
	if err := collection.Init(dir); err != nil {
		t.Fatal(err)
	}
	r2, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r2.Close() })
	col, _ := collection.FromReader(r2)
	srv := serve.New(r2, serve.Options{})
	ts2 := httptest.NewServer(newMux(srv, col, muxOptions{maxBatch: 16, maxDoc: 64}))
	t.Cleanup(ts2.Close)
	resp, err := http.Post(ts2.URL+"/append", "application/octet-stream", bytes.NewReader(make([]byte, 200)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized append = %d, want 413", resp.StatusCode)
	}
	// An in-cap append still lands.
	resp, err = http.Post(ts2.URL+"/append", "application/octet-stream", bytes.NewReader([]byte("small")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small append = %d", resp.StatusCode)
	}
}
