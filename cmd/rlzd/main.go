// Command rlzd serves documents from any archive built by cmd/rlz over
// HTTP. The backend (rlz, block or raw) is auto-detected from the
// archive's magic bytes; a shard directory (rlz build -shards) and a
// live collection directory (rlz append) are served through the same
// flag. Requests are served concurrently through internal/serve's
// goroutine-safe Server, with an optional hot-document LRU cache and
// live read statistics.
//
// Serving a live collection additionally enables the write API: new
// documents are appended over HTTP and readable immediately, deletes
// tombstone ids, and a background compactor (or POST /compact) drains
// the append path into RLZ segments without a restart — the documents
// keep their ids and bytes across the swap.
//
// Appends are durable by default: each is acknowledged when the WAL
// batch it joined is fsynced (group commit), -sync-appends fsyncs the
// segment per append, -async-appends acknowledges from memory. When the
// in-flight WAL budget (-wal-max-pending) is exhausted, writes answer
// 429 Too Many Requests with Retry-After — back off and retry.
//
// Usage:
//
//	rlzd -a archive.rlz [-addr :8087] [-cache 1024] [-workers 0]
//	rlzd -a sharddir/
//	rlzd -a collectiondir/ [-compact-after 10000] [-sync-appends]
//	     [-async-appends] [-wal-max-pending 8MB] [-append-batch 256]
//
// Endpoints:
//
//	GET    /doc/{id}      one document, verbatim bytes
//	POST   /docs          batch retrieval; JSON {"ids":[1,2,3]} in,
//	                      per-document data/error JSON out
//	GET    /stats         serve.Stats as JSON, plus a per-shard breakdown
//	                      (shard sets) or generation breakdown (collections)
//	POST   /append        raw document bytes in, JSON {"id":N} out
//	                      (live collections only)
//	POST   /append/batch  JSON {"docs":[base64,...]} in, JSON {"ids":[...]}
//	                      out; one commit window for the whole batch
//	                      (live collections only)
//	DELETE /doc/{id}      tombstone a document (live collections only)
//	POST   /compact       run a compaction now (live collections only)
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"rlz/internal/archive"
	"rlz/internal/collection"
	"rlz/internal/serve"
	"rlz/internal/units"
)

func main() {
	fs := flag.NewFlagSet("rlzd", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required; backend auto-detected)")
	addr := fs.String("addr", ":8087", "listen address")
	cacheDocs := fs.Int("cache", 1024, "hot-document LRU capacity in documents; 0 disables")
	workers := fs.Int("workers", 0, "batch fan-out per request; 0 means GOMAXPROCS")
	maxBatch := fs.Int("max-batch", 4096, "largest accepted POST /docs batch")
	maxDoc := fs.String("max-doc", "16MB", "largest accepted POST /append document (and /append/batch body)")
	syncAppends := fs.Bool("sync-appends", false, "fsync every append before acknowledging it (live collections)")
	asyncAppends := fs.Bool("async-appends", false, "acknowledge appends before they are durable; loses the tail on crash (live collections)")
	walMaxPending := fs.String("wal-max-pending", "8MB", "WAL bytes in flight before appends answer 429 (live collections)")
	appendBatch := fs.Int("append-batch", 256, "largest accepted POST /append/batch document count")
	compactAfter := fs.Int("compact-after", 0, "auto-compact when this many documents await compaction; 0 disables (live collections)")
	compactEvery := fs.Duration("compact-every", 0, "auto-compact on this interval when work is pending; 0 disables (live collections)")
	adapt := fs.Bool("adapt", false, "compactions learn: evict cold dictionary regions, re-sample from drained documents, adopt on trial gain (live collections)")
	adaptEvict := fs.Float64("adapt-evict", 0, "fraction of dictionary regions an adaptive re-sample evicts (0 means 0.25)")
	adaptGain := fs.Float64("adapt-gain", 0, "relative encoded-byte saving required to adopt an adaptive dictionary (0 means 0.02)")
	fs.Parse(os.Args[1:])
	if *arc == "" {
		fmt.Fprintln(os.Stderr, "rlzd: -a is required")
		fs.Usage()
		os.Exit(2)
	}
	maxDocBytes, err := units.ParseSize(*maxDoc)
	if err != nil {
		log.Fatalf("rlzd: -max-doc: %v", err)
	}
	walPendingBytes, err := units.ParseSize(*walMaxPending)
	if err != nil {
		log.Fatalf("rlzd: -wal-max-pending: %v", err)
	}

	r, err := archive.Open(*arc)
	if err != nil {
		log.Fatalf("rlzd: %v", err)
	}
	defer r.Close()
	col, live := collection.FromReader(r)
	if live {
		// archive.Open used default options; reopen with the daemon's
		// durability and admission configuration.
		_ = r.Close()
		col, err = collection.Open(*arc, collection.Options{
			SyncAppends:   *syncAppends,
			Async:         *asyncAppends,
			MaxWALPending: int64(walPendingBytes),
		})
		if err != nil {
			log.Fatalf("rlzd: %v", err)
		}
		r = col
		defer r.Close()
	}
	srv := serve.New(r, serve.Options{CacheDocs: *cacheDocs, Workers: *workers})
	st := r.Stats()
	log.Printf("rlzd: serving %s (%s, %d docs, %d bytes) on %s",
		*arc, backendLabel(r), st.NumDocs, st.Size, *addr)

	copts := collection.CompactOptions{Adapt: *adapt, EvictFraction: *adaptEvict, MinRatioGain: *adaptGain}
	if live && (*compactAfter > 0 || *compactEvery > 0) {
		go autoCompact(col, *compactAfter, *compactEvery, copts)
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      newMux(srv, col, muxOptions{maxBatch: *maxBatch, maxDoc: int64(maxDocBytes), appendBatch: *appendBatch, compact: copts}),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}

// autoCompact is the daemon's background compactor: every tick it
// checks how many documents await compaction (open segment plus raw
// sealed segments) and drains them into RLZ segments when the threshold
// is met. Compaction runs concurrently with serving — reads route
// through the old generation until the new one is published atomically.
func autoCompact(col *collection.Collection, after int, every time.Duration, opts collection.CompactOptions) {
	tick := every
	if tick <= 0 {
		tick = time.Second
	}
	for range time.Tick(tick) {
		info := col.Info()
		if info.PendingDocs == 0 {
			continue
		}
		if after > 0 && info.PendingDocs < after {
			continue
		}
		res, err := col.Compact(opts)
		if err != nil {
			// A compaction already running (a POST /compact, or a long
			// auto pass outliving the tick) is expected contention, not
			// an error worth a log line per tick.
			if !errors.Is(err, collection.ErrCompacting) {
				log.Printf("rlzd: auto-compaction: %v", err)
			}
			continue
		}
		if res.Compacted > 0 {
			note := ""
			if res.Relearned {
				note = fmt.Sprintf(", adopted dictionary %d", res.Dict)
			}
			log.Printf("rlzd: auto-compacted %d segments (%d docs, %d -> %d bytes%s), generation %d",
				res.Compacted, res.Docs, res.BytesBefore, res.BytesAfter, note, res.Generation)
		}
	}
}
