// Command rlzd serves documents from any archive built by cmd/rlz over
// HTTP. The backend (rlz, block or raw) is auto-detected from the
// archive's magic bytes; a shard directory (rlz build -shards) is served
// through the same flag, with requests routed to the owning shard.
// Requests are served concurrently through internal/serve's
// goroutine-safe Server, with an optional hot-document LRU cache and
// live read statistics.
//
// Usage:
//
//	rlzd -a archive.rlz [-addr :8087] [-cache 1024] [-workers 0]
//	rlzd -a sharddir/
//
// Endpoints:
//
//	GET  /doc/{id}  one document, verbatim bytes
//	POST /docs      batch retrieval; JSON {"ids":[1,2,3]} in,
//	                per-document data/error JSON out
//	GET  /stats     serve.Stats as JSON, plus a per-shard breakdown
//	                when serving a shard set
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"rlz/internal/archive"
	"rlz/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("rlzd", flag.ExitOnError)
	arc := fs.String("a", "", "archive path (required; backend auto-detected)")
	addr := fs.String("addr", ":8087", "listen address")
	cacheDocs := fs.Int("cache", 1024, "hot-document LRU capacity in documents; 0 disables")
	workers := fs.Int("workers", 0, "batch fan-out per request; 0 means GOMAXPROCS")
	maxBatch := fs.Int("max-batch", 4096, "largest accepted POST /docs batch")
	fs.Parse(os.Args[1:])
	if *arc == "" {
		fmt.Fprintln(os.Stderr, "rlzd: -a is required")
		fs.Usage()
		os.Exit(2)
	}

	r, err := archive.Open(*arc)
	if err != nil {
		log.Fatalf("rlzd: %v", err)
	}
	defer r.Close()
	srv := serve.New(r, serve.Options{CacheDocs: *cacheDocs, Workers: *workers})
	st := r.Stats()
	log.Printf("rlzd: serving %s (%s, %d docs, %d bytes) on %s",
		*arc, backendLabel(r), st.NumDocs, st.Size, *addr)

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      newMux(srv, *maxBatch, nil),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
