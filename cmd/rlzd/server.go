package main

import (
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"strconv"

	"rlz/internal/archive"
	"rlz/internal/docmap"
	"rlz/internal/serve"
	"rlz/internal/shard"
)

// batchRequest is the POST /docs body.
type batchRequest struct {
	IDs []int `json:"ids"`
}

// batchDoc is one document of the POST /docs response. Data is base64
// (Go's default []byte JSON encoding) and is always present on success —
// a zero-byte document yields "data":"" — and null when Error is set.
type batchDoc struct {
	ID    int    `json:"id"`
	Data  []byte `json:"data"`
	Error string `json:"error,omitempty"`
}

// batchResponse is the POST /docs response envelope.
type batchResponse struct {
	Docs   []batchDoc `json:"docs"`
	Errors int        `json:"errors"`
}

// shardStat is the per-shard breakdown of GET /stats for shard sets.
type shardStat struct {
	Path      string `json:"path"`
	NumDocs   int    `json:"num_docs"`
	SizeBytes int64  `json:"size_bytes"`
}

// statsResponse is serve.Stats plus, when serving a shard set, the
// per-shard breakdown.
type statsResponse struct {
	serve.Stats
	NumShards int         `json:"num_shards,omitempty"`
	Shards    []shardStat `json:"shards,omitempty"`
}

// newMux wires the rlzd endpoints around a serve.Server. Split from main
// so handler tests run against httptest without a process. Response
// encoding failures (typically a client gone mid-body) are reported to
// errlog — nil means the process logger — so truncated responses are
// observable instead of silently dropped.
func newMux(srv *serve.Server, maxBatch int, errlog *log.Logger) http.Handler {
	if errlog == nil {
		errlog = log.Default()
	}
	mux := http.NewServeMux()

	// Per-shard figures are immutable once the archive is open, so the
	// breakdown is computed once, not per /stats request.
	var shardStats []shardStat
	if sr, ok := shard.FromReader(srv.Reader()); ok {
		m := sr.Manifest()
		for i, st := range sr.ShardStats() {
			shardStats = append(shardStats, shardStat{Path: m.Shards[i].Path, NumDocs: st.NumDocs, SizeBytes: st.Size})
		}
	}

	mux.HandleFunc("GET /doc/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			http.Error(w, "document id must be an integer", http.StatusBadRequest)
			return
		}
		// Do serves from a pooled buffer: no per-request allocation on
		// the document path.
		wrote := false
		err = srv.Do(id, func(doc []byte) error {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
			wrote = true
			_, werr := w.Write(doc)
			return werr
		})
		if err != nil && !wrote {
			// Retrieval failed before any byte went out, so a clean
			// error response is still possible. A failed Write means the
			// status and part of the body are already on the wire
			// (typically a gone client); appending an error would only
			// corrupt the stream.
			if errors.Is(err, docmap.ErrNoSuchDoc) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("POST /docs", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.IDs) == 0 {
			http.Error(w, `body must carry {"ids":[...]} with at least one id`, http.StatusBadRequest)
			return
		}
		if len(req.IDs) > maxBatch {
			http.Error(w, "batch of "+strconv.Itoa(len(req.IDs))+" exceeds limit "+strconv.Itoa(maxBatch), http.StatusRequestEntityTooLarge)
			return
		}
		resp := batchResponse{Docs: make([]batchDoc, len(req.IDs))}
		// Negative ids can never resolve; reject them up front instead
		// of paying a backend round-trip each. valid/slot carry the
		// surviving ids and their response positions.
		valid := req.IDs
		var slot []int
		for _, id := range req.IDs {
			if id < 0 {
				valid = make([]int, 0, len(req.IDs))
				slot = make([]int, 0, len(req.IDs))
				break
			}
		}
		if slot != nil {
			for i, id := range req.IDs {
				if id < 0 {
					resp.Docs[i] = batchDoc{ID: id, Error: "document id must be non-negative"}
					resp.Errors++
					continue
				}
				valid = append(valid, id)
				slot = append(slot, i)
			}
		}
		for k, res := range srv.GetBatch(valid) {
			i := k
			if slot != nil {
				i = slot[k]
			}
			resp.Docs[i].ID = res.ID
			if res.Err != nil {
				resp.Docs[i].Error = res.Err.Error()
				resp.Errors++
				continue
			}
			resp.Docs[i].Data = res.Data
			if resp.Docs[i].Data == nil { // zero-byte document, not an omission
				resp.Docs[i].Data = []byte{}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			errlog.Printf("rlzd: encoding /docs response (%d ids): %v", len(req.IDs), err)
		}
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		resp := statsResponse{Stats: srv.Stats(), NumShards: len(shardStats), Shards: shardStats}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			errlog.Printf("rlzd: encoding /stats response: %v", err)
		}
	})

	return mux
}

// backendLabel names what the daemon is serving, including shard shape.
func backendLabel(r archive.Reader) string {
	st := r.Stats()
	if sr, ok := shard.FromReader(r); ok {
		return string(st.Backend) + " backend, " + strconv.Itoa(sr.NumShards()) + " shards"
	}
	return string(st.Backend) + " backend"
}
