package main

import (
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"strconv"

	"rlz/internal/archive"
	"rlz/internal/collection"
	"rlz/internal/docmap"
	"rlz/internal/serve"
	"rlz/internal/shard"
)

// batchRequest is the POST /docs body.
type batchRequest struct {
	IDs []int `json:"ids"`
}

// batchDoc is one document of the POST /docs response. Data is base64
// (Go's default []byte JSON encoding) and is always present on success —
// a zero-byte document yields "data":"" — and null when Error is set.
type batchDoc struct {
	ID    int    `json:"id"`
	Data  []byte `json:"data"`
	Error string `json:"error,omitempty"`
}

// batchResponse is the POST /docs response envelope.
type batchResponse struct {
	Docs   []batchDoc `json:"docs"`
	Errors int        `json:"errors"`
}

// shardStat is the per-shard breakdown of GET /stats for shard sets.
type shardStat struct {
	Path      string `json:"path"`
	NumDocs   int    `json:"num_docs"`
	SizeBytes int64  `json:"size_bytes"`
}

// statsResponse is serve.Stats plus, when serving a shard set, the
// per-shard breakdown, and, when serving a live collection, the
// generation breakdown.
type statsResponse struct {
	serve.Stats
	NumShards int              `json:"num_shards,omitempty"`
	Shards    []shardStat      `json:"shards,omitempty"`
	Live      *collection.Info `json:"live,omitempty"`
}

// appendBatchRequest is the POST /append/batch body: documents as
// base64 strings (Go's []byte JSON encoding), appended in order.
type appendBatchRequest struct {
	Docs [][]byte `json:"docs"`
}

// appendBatchResponse reports the ids that were durably acknowledged.
// On a partial failure IDs holds the acknowledged prefix and Error the
// reason the rest were refused.
type appendBatchResponse struct {
	IDs        []int  `json:"ids"`
	Generation uint64 `json:"generation"`
	Error      string `json:"error,omitempty"`
}

// muxOptions carries the write-path configuration of newMux.
type muxOptions struct {
	maxBatch    int
	maxDoc      int64                     // largest accepted POST /append body
	appendBatch int                       // largest accepted POST /append/batch document count
	compact     collection.CompactOptions // options for POST /compact (and the auto-compactor)
	errlog      *log.Logger
}

// newMux wires the rlzd endpoints around a serve.Server. col is non-nil
// when the archive is a live collection, which lights up the write API
// (POST /append, DELETE /doc/{id}, POST /compact); on static archives
// those endpoints answer 405. Split from main so handler tests run
// against httptest without a process. Response encoding failures
// (typically a client gone mid-body) are reported to errlog — nil means
// the process logger — so truncated responses are observable instead of
// silently dropped.
func newMux(srv *serve.Server, col *collection.Collection, opt muxOptions) http.Handler {
	errlog := opt.errlog
	if errlog == nil {
		errlog = log.Default()
	}
	if opt.maxDoc <= 0 {
		opt.maxDoc = 16 << 20
	}
	if opt.appendBatch <= 0 {
		opt.appendBatch = 256
	}
	mux := http.NewServeMux()

	// backpressured answers ErrBackpressure writes with 429 + Retry-After
	// (the admission budget drains in well under a second; clients with
	// jittered backoff spread the retries) and reports whether it handled
	// the error.
	backpressured := func(w http.ResponseWriter, err error) bool {
		if !errors.Is(err, collection.ErrBackpressure) {
			return false
		}
		srv.RecordBackpressure()
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return true
	}

	// Per-shard figures are immutable once a static shard set is open,
	// so that breakdown is computed once, not per /stats request (a live
	// collection's shape changes; its breakdown is per-request below).
	var shardStats []shardStat
	if sr, ok := shard.FromReader(srv.Reader()); ok {
		m := sr.Manifest()
		for i, st := range sr.ShardStats() {
			shardStats = append(shardStats, shardStat{Path: m.Shards[i].Path, NumDocs: st.NumDocs, SizeBytes: st.Size})
		}
	}

	readOnly := func(w http.ResponseWriter) bool {
		if col != nil {
			return false
		}
		http.Error(w, "archive is read-only; serve a live collection directory to enable writes", http.StatusMethodNotAllowed)
		return true
	}

	mux.HandleFunc("GET /doc/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			http.Error(w, "document id must be an integer", http.StatusBadRequest)
			return
		}
		// Do serves from a pooled buffer: no per-request allocation on
		// the document path.
		wrote := false
		err = srv.Do(id, func(doc []byte) error {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
			wrote = true
			_, werr := w.Write(doc)
			return werr
		})
		if err != nil && !wrote {
			// Retrieval failed before any byte went out, so a clean
			// error response is still possible. A failed Write means the
			// status and part of the body are already on the wire
			// (typically a gone client); appending an error would only
			// corrupt the stream.
			if errors.Is(err, docmap.ErrNoSuchDoc) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("POST /docs", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.IDs) == 0 {
			http.Error(w, `body must carry {"ids":[...]} with at least one id`, http.StatusBadRequest)
			return
		}
		if len(req.IDs) > opt.maxBatch {
			http.Error(w, "batch of "+strconv.Itoa(len(req.IDs))+" exceeds limit "+strconv.Itoa(opt.maxBatch), http.StatusRequestEntityTooLarge)
			return
		}
		resp := batchResponse{Docs: make([]batchDoc, len(req.IDs))}
		// Negative ids can never resolve; reject them up front instead
		// of paying a backend round-trip each. valid/slot carry the
		// surviving ids and their response positions.
		valid := req.IDs
		var slot []int
		for _, id := range req.IDs {
			if id < 0 {
				valid = make([]int, 0, len(req.IDs))
				slot = make([]int, 0, len(req.IDs))
				break
			}
		}
		if slot != nil {
			for i, id := range req.IDs {
				if id < 0 {
					resp.Docs[i] = batchDoc{ID: id, Error: "document id must be non-negative"}
					resp.Errors++
					continue
				}
				valid = append(valid, id)
				slot = append(slot, i)
			}
		}
		for k, res := range srv.GetBatch(valid) {
			i := k
			if slot != nil {
				i = slot[k]
			}
			resp.Docs[i].ID = res.ID
			if res.Err != nil {
				resp.Docs[i].Error = res.Err.Error()
				resp.Errors++
				continue
			}
			resp.Docs[i].Data = res.Data
			if resp.Docs[i].Data == nil { // zero-byte document, not an omission
				resp.Docs[i].Data = []byte{}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			errlog.Printf("rlzd: encoding /docs response (%d ids): %v", len(req.IDs), err)
		}
	})

	mux.HandleFunc("POST /append", func(w http.ResponseWriter, r *http.Request) {
		if readOnly(w) {
			return
		}
		doc, err := io.ReadAll(http.MaxBytesReader(w, r.Body, opt.maxDoc))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, "document exceeds limit of "+strconv.FormatInt(opt.maxDoc, 10)+" bytes", http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
		id, err := col.Append(doc)
		if err != nil {
			if backpressured(w, err) {
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(map[string]any{"id": id, "generation": col.Generation()}); err != nil {
			errlog.Printf("rlzd: encoding /append response: %v", err)
		}
	})

	mux.HandleFunc("POST /append/batch", func(w http.ResponseWriter, r *http.Request) {
		if readOnly(w) {
			return
		}
		// The whole batch body shares the single-document byte budget: a
		// batch is a latency optimization (one commit window, about one
		// fsync), not a bulk-import channel.
		var req appendBatchRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, opt.maxDoc)).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, "batch body exceeds limit of "+strconv.FormatInt(opt.maxDoc, 10)+" bytes", http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.Docs) == 0 {
			http.Error(w, `body must carry {"docs":[...]} with at least one document`, http.StatusBadRequest)
			return
		}
		if len(req.Docs) > opt.appendBatch {
			http.Error(w, "batch of "+strconv.Itoa(len(req.Docs))+" documents exceeds limit "+strconv.Itoa(opt.appendBatch), http.StatusRequestEntityTooLarge)
			return
		}
		ids, err := col.AppendBatch(req.Docs)
		resp := appendBatchResponse{IDs: ids, Generation: col.Generation()}
		if resp.IDs == nil {
			resp.IDs = []int{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			// The acknowledged prefix is durable and reported either way;
			// the status says why the rest was refused.
			resp.Error = err.Error()
			status := http.StatusInternalServerError
			if errors.Is(err, collection.ErrBackpressure) {
				srv.RecordBackpressure()
				w.Header().Set("Retry-After", "1")
				status = http.StatusTooManyRequests
			}
			w.WriteHeader(status)
			if err := json.NewEncoder(w).Encode(resp); err != nil {
				errlog.Printf("rlzd: encoding /append/batch error response: %v", err)
			}
			return
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			errlog.Printf("rlzd: encoding /append/batch response: %v", err)
		}
	})

	mux.HandleFunc("DELETE /doc/{id}", func(w http.ResponseWriter, r *http.Request) {
		if readOnly(w) {
			return
		}
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			http.Error(w, "document id must be an integer", http.StatusBadRequest)
			return
		}
		if err := col.Delete(id); err != nil {
			if errors.Is(err, docmap.ErrNoSuchDoc) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Advance the cache epoch rather than dropping the one entry: a
		// concurrent GET that fetched the document before the tombstone
		// published could re-cache it after a point invalidation, but its
		// Put lands under the old epoch's key, which no request uses now.
		srv.BumpEpoch()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(map[string]any{"deleted": id, "generation": col.Generation()}); err != nil {
			errlog.Printf("rlzd: encoding delete response: %v", err)
		}
	})

	mux.HandleFunc("POST /compact", func(w http.ResponseWriter, r *http.Request) {
		if readOnly(w) {
			return
		}
		// The daemon's configured options: repository-default codec,
		// dictionary budget and factorizer, plus adaptive learning when
		// -adapt is set (rlz compact has the full tuning flags for
		// offline runs).
		res, err := col.Compact(opt.compact)
		if err != nil {
			if errors.Is(err, collection.ErrCompacting) {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(res); err != nil {
			errlog.Printf("rlzd: encoding /compact response: %v", err)
		}
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		resp := statsResponse{Stats: srv.Stats(), NumShards: len(shardStats), Shards: shardStats}
		if col != nil {
			info := col.Info()
			resp.Live = &info
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			errlog.Printf("rlzd: encoding /stats response: %v", err)
		}
	})

	return mux
}

// backendLabel names what the daemon is serving, including shard or
// generation shape.
func backendLabel(r archive.Reader) string {
	st := r.Stats()
	if c, ok := collection.FromReader(r); ok {
		info := c.Info()
		return "live collection, generation " + strconv.FormatUint(info.Generation, 10) +
			", " + strconv.Itoa(len(info.Segments)) + " sealed segments"
	}
	if sr, ok := shard.FromReader(r); ok {
		return string(st.Backend) + " backend, " + strconv.Itoa(sr.NumShards()) + " shards"
	}
	return string(st.Backend) + " backend"
}
