package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"rlz/internal/docmap"
	"rlz/internal/serve"
)

// batchRequest is the POST /docs body.
type batchRequest struct {
	IDs []int `json:"ids"`
}

// batchDoc is one document of the POST /docs response. Data is base64
// (Go's default []byte JSON encoding) and is always present on success —
// a zero-byte document yields "data":"" — and null when Error is set.
type batchDoc struct {
	ID    int    `json:"id"`
	Data  []byte `json:"data"`
	Error string `json:"error,omitempty"`
}

// batchResponse is the POST /docs response envelope.
type batchResponse struct {
	Docs   []batchDoc `json:"docs"`
	Errors int        `json:"errors"`
}

// newMux wires the rlzd endpoints around a serve.Server. Split from main
// so handler tests run against httptest without a process.
func newMux(srv *serve.Server, maxBatch int) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /doc/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			http.Error(w, "document id must be an integer", http.StatusBadRequest)
			return
		}
		// Do serves from a pooled buffer: no per-request allocation on
		// the document path.
		wrote := false
		err = srv.Do(id, func(doc []byte) error {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
			wrote = true
			_, werr := w.Write(doc)
			return werr
		})
		if err != nil && !wrote {
			// Retrieval failed before any byte went out, so a clean
			// error response is still possible. A failed Write means the
			// status and part of the body are already on the wire
			// (typically a gone client); appending an error would only
			// corrupt the stream.
			if errors.Is(err, docmap.ErrNoSuchDoc) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("POST /docs", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.IDs) == 0 {
			http.Error(w, `body must carry {"ids":[...]} with at least one id`, http.StatusBadRequest)
			return
		}
		if len(req.IDs) > maxBatch {
			http.Error(w, "batch of "+strconv.Itoa(len(req.IDs))+" exceeds limit "+strconv.Itoa(maxBatch), http.StatusRequestEntityTooLarge)
			return
		}
		resp := batchResponse{Docs: make([]batchDoc, len(req.IDs))}
		for i, res := range srv.GetBatch(req.IDs) {
			resp.Docs[i].ID = res.ID
			if res.Err != nil {
				resp.Docs[i].Error = res.Err.Error()
				resp.Errors++
				continue
			}
			resp.Docs[i].Data = res.Data
			if resp.Docs[i].Data == nil { // zero-byte document, not an omission
				resp.Docs[i].Data = []byte{}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(srv.Stats())
	})

	return mux
}
