package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"rlz/internal/archive"
	"rlz/internal/rlz"
	"rlz/internal/serve"
	"rlz/internal/shard"
	"rlz/internal/workload"
)

func makeDocs(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]byte, n)
	for i := range docs {
		var b bytes.Buffer
		fmt.Fprintf(&b, "<html><title>Doc %d</title><body>", i)
		for j := 0; j < 2+rng.Intn(6); j++ {
			fmt.Fprintf(&b, "<p>shared boilerplate %d</p>", rng.Intn(3))
		}
		fmt.Fprintf(&b, "%x</body></html>", rng.Int63())
		docs[i] = b.Bytes()
	}
	return docs
}

// newTestServer builds an archive for docs with the given backend options
// and wraps it in the rlzd handler.
func newTestServer(t *testing.T, docs [][]byte, opts archive.Options, cacheDocs, maxBatch int) (*httptest.Server, *serve.Server) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := archive.Build(&buf, archive.FromBodies(docs), opts); err != nil {
		t.Fatal(err)
	}
	r, err := archive.OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(r, serve.Options{CacheDocs: cacheDocs, Workers: 4})
	ts := httptest.NewServer(newMux(srv, nil, muxOptions{maxBatch: maxBatch}))
	t.Cleanup(ts.Close)
	return ts, srv
}

func allBackendOptions(docs [][]byte) map[string]archive.Options {
	var all []byte
	for _, d := range docs {
		all = append(all, d...)
	}
	return map[string]archive.Options{
		"rlz":   {Backend: archive.RLZ, Dict: rlz.SampleEven(all, len(all)/10+64, 256), Codec: rlz.CodecZV},
		"block": {Backend: archive.Block, BlockSize: 4096},
		"raw":   {Backend: archive.Raw},
	}
}

func TestGetDoc(t *testing.T) {
	docs := makeDocs(25, 1)
	for name, opts := range allBackendOptions(docs) {
		t.Run(name, func(t *testing.T) {
			ts, _ := newTestServer(t, docs, opts, 8, 64)
			for i, want := range docs {
				resp, err := http.Get(ts.URL + "/doc/" + strconv.Itoa(i))
				if err != nil {
					t.Fatal(err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("GET /doc/%d = %d: %s", i, resp.StatusCode, body)
				}
				if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(want)) {
					t.Errorf("GET /doc/%d Content-Length = %q, want %d", i, got, len(want))
				}
				if !bytes.Equal(body, want) {
					t.Errorf("GET /doc/%d returned wrong bytes", i)
				}
			}
		})
	}
}

func TestGetDocErrors(t *testing.T) {
	docs := makeDocs(5, 2)
	ts, _ := newTestServer(t, docs, allBackendOptions(docs)["raw"], 0, 64)
	tests := []struct {
		name       string
		method     string
		path       string
		wantStatus int
	}{
		{"out-of-range", "GET", "/doc/5", http.StatusNotFound},
		{"negative", "GET", "/doc/-1", http.StatusNotFound},
		{"non-numeric", "GET", "/doc/abc", http.StatusBadRequest},
		{"missing-id", "GET", "/doc/", http.StatusNotFound}, // no pattern match
		{"wrong-method", "POST", "/doc/1", http.StatusMethodNotAllowed},
		{"unknown-path", "GET", "/nope", http.StatusNotFound},
		{"stats-wrong-method", "POST", "/stats", http.StatusMethodNotAllowed},
		{"docs-wrong-method", "GET", "/docs", http.StatusMethodNotAllowed},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
			}
		})
	}
}

func TestPostDocsBatch(t *testing.T) {
	docs := makeDocs(20, 3)
	for name, opts := range allBackendOptions(docs) {
		t.Run(name, func(t *testing.T) {
			ts, _ := newTestServer(t, docs, opts, 8, 64)
			// Mixed batch: valid ids, a duplicate, and two bad ids whose
			// errors must be reported per document, not fail the request.
			ids := []int{3, 0, 3, 19, 99, -1}
			body, _ := json.Marshal(batchRequest{IDs: ids})
			resp, err := http.Post(ts.URL+"/docs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /docs = %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
			var br batchResponse
			if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
				t.Fatal(err)
			}
			if len(br.Docs) != len(ids) {
				t.Fatalf("got %d docs, want %d", len(br.Docs), len(ids))
			}
			if br.Errors != 2 {
				t.Errorf("Errors = %d, want 2", br.Errors)
			}
			for i, d := range br.Docs {
				if d.ID != ids[i] {
					t.Errorf("doc %d has id %d, want %d", i, d.ID, ids[i])
				}
				if ids[i] < 0 || ids[i] >= len(docs) {
					if d.Error == "" {
						t.Errorf("bad id %d reported no error", ids[i])
					}
					continue
				}
				if d.Error != "" {
					t.Errorf("id %d: unexpected error %q", ids[i], d.Error)
				}
				if !bytes.Equal(d.Data, docs[ids[i]]) {
					t.Errorf("id %d: wrong bytes", ids[i])
				}
			}
		})
	}
}

// TestPostDocsZeroByteDocument pins the batch response contract for the
// degenerate document: success always carries a "data" field (an empty
// string for an empty document), never a bare {"id":N}.
func TestPostDocsZeroByteDocument(t *testing.T) {
	docs := [][]byte{[]byte("first"), {}, []byte("third")}
	ts, _ := newTestServer(t, docs, archive.Options{Backend: archive.Raw}, 0, 16)
	resp, err := http.Post(ts.URL+"/docs", "application/json", strings.NewReader(`{"ids":[1,99]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var shape struct {
		Docs []map[string]any `json:"docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shape); err != nil {
		t.Fatal(err)
	}
	if len(shape.Docs) != 2 {
		t.Fatalf("got %d docs", len(shape.Docs))
	}
	if data, ok := shape.Docs[0]["data"]; !ok || data != "" {
		t.Errorf(`zero-byte document: data = %v (present %v), want ""`, data, ok)
	}
	if _, ok := shape.Docs[0]["error"]; ok {
		t.Error("zero-byte document reported an error")
	}
	if errStr, ok := shape.Docs[1]["error"]; !ok || errStr == "" {
		t.Errorf("bad id: error = %v (present %v)", errStr, ok)
	}
}

func TestPostDocsRejects(t *testing.T) {
	docs := makeDocs(5, 4)
	ts, _ := newTestServer(t, docs, allBackendOptions(docs)["raw"], 0, 3)
	tests := []struct {
		name       string
		body       string
		wantStatus int
	}{
		{"malformed-json", `{"ids":[1,`, http.StatusBadRequest},
		{"empty-ids", `{"ids":[]}`, http.StatusBadRequest},
		{"no-ids-key", `{}`, http.StatusBadRequest},
		{"over-batch-limit", `{"ids":[0,1,2,3]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/docs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("POST /docs %s = %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
			}
		})
	}
}

func TestStatsEndpoint(t *testing.T) {
	docs := makeDocs(10, 5)
	ts, _ := newTestServer(t, docs, allBackendOptions(docs)["block"], 16, 64)
	// Generate traffic: two sweeps (second hits cache) and one miss.
	for pass := 0; pass < 2; pass++ {
		for i := range docs {
			resp, err := http.Get(ts.URL + "/doc/" + strconv.Itoa(i))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	http.Get(ts.URL + "/doc/999")

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats = %d", resp.StatusCode)
	}
	// Decode into a loose map to pin the JSON field names the endpoint
	// promises, then into the typed struct for value checks.
	raw, _ := io.ReadAll(resp.Body)
	var shape map[string]any
	if err := json.Unmarshal(raw, &shape); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"backend", "num_docs", "archive_size_bytes", "requests", "errors",
		"cache_hits", "cache_misses", "cached_docs", "cache_capacity",
		"bytes_decoded", "bytes_served", "p50_latency_ns", "p99_latency_ns",
	} {
		if _, ok := shape[key]; !ok {
			t.Errorf("stats JSON missing key %q", key)
		}
	}
	var st serve.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Backend != "block" {
		t.Errorf("backend = %q, want block", st.Backend)
	}
	if st.NumDocs != len(docs) {
		t.Errorf("num_docs = %d, want %d", st.NumDocs, len(docs))
	}
	if want := int64(2*len(docs) + 1); st.Requests != want {
		t.Errorf("requests = %d, want %d", st.Requests, want)
	}
	if st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
	if st.CacheHits < int64(len(docs)) {
		t.Errorf("cache_hits = %d, want >= %d (full second sweep)", st.CacheHits, len(docs))
	}
	if st.P50Nanos <= 0 || st.P99Nanos < st.P50Nanos {
		t.Errorf("latency quantiles p50=%d p99=%d are not sane", st.P50Nanos, st.P99Nanos)
	}
}

// TestLoadGeneratorAgainstDaemon drives the HTTP daemon with the
// closed-loop load generator — the same driver the benchmarks use
// against the in-process Server — over all three backends.
func TestLoadGeneratorAgainstDaemon(t *testing.T) {
	docs := makeDocs(30, 6)
	for name, opts := range allBackendOptions(docs) {
		t.Run(name, func(t *testing.T) {
			ts, srv := newTestServer(t, docs, opts, 16, 64)
			ids := workload.QueryLog(len(docs), 300, 42)
			res := workload.Run(&workload.HTTPGetter{BaseURL: ts.URL, Client: ts.Client()}, ids, 8)
			if res.Errors != 0 {
				t.Fatalf("load run had %d errors", res.Errors)
			}
			if res.Requests != int64(len(ids)) {
				t.Errorf("Requests = %d, want %d", res.Requests, len(ids))
			}
			if srv.Stats().Requests != int64(len(ids)) {
				t.Errorf("server saw %d requests, want %d", srv.Stats().Requests, len(ids))
			}
			if res.Throughput() <= 0 {
				t.Errorf("throughput = %f", res.Throughput())
			}
		})
	}
}

// TestPostDocsNegativeIDFastPath: negative ids are rejected in the
// handler, before the serving layer — the backend sees only the valid
// ids — and the response still reports every id in request order.
func TestPostDocsNegativeIDFastPath(t *testing.T) {
	docs := makeDocs(8, 7)
	ts, srv := newTestServer(t, docs, archive.Options{Backend: archive.Raw}, 0, 64)
	ids := []int{-5, 2, -1, 0, 7, -9}
	body, _ := json.Marshal(batchRequest{IDs: ids})
	resp, err := http.Post(ts.URL+"/docs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Docs) != len(ids) || br.Errors != 3 {
		t.Fatalf("got %d docs, %d errors; want %d docs, 3 errors", len(br.Docs), br.Errors, len(ids))
	}
	for i, d := range br.Docs {
		if d.ID != ids[i] {
			t.Errorf("doc %d has id %d, want %d", i, d.ID, ids[i])
		}
		if ids[i] < 0 {
			if d.Error == "" {
				t.Errorf("negative id %d reported no error", ids[i])
			}
			continue
		}
		if d.Error != "" || !bytes.Equal(d.Data, docs[ids[i]]) {
			t.Errorf("id %d: %q / wrong bytes", ids[i], d.Error)
		}
	}
	// The serving layer must have been asked only for the 3 valid ids.
	if got := srv.Stats().Requests; got != 3 {
		t.Errorf("backend saw %d requests, want 3 (negatives short-circuited)", got)
	}
}

// failAfterHeaderWriter passes header writes through to the recorder but
// fails body writes, simulating a client gone before the JSON body.
type failAfterHeaderWriter struct {
	http.ResponseWriter
}

func (w failAfterHeaderWriter) Write([]byte) (int, error) {
	return 0, fmt.Errorf("client went away")
}

// TestEncodeErrorsAreLogged: a response-encoding failure on /docs and
// /stats lands in the error log instead of vanishing.
func TestEncodeErrorsAreLogged(t *testing.T) {
	docs := makeDocs(4, 8)
	var buf bytes.Buffer
	if _, err := archive.Build(&buf, archive.FromBodies(docs), archive.Options{Backend: archive.Raw}); err != nil {
		t.Fatal(err)
	}
	r, err := archive.OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	h := newMux(serve.New(r, serve.Options{}), nil, muxOptions{maxBatch: 64, errlog: log.New(&logBuf, "", 0)})

	req := httptest.NewRequest("POST", "/docs", strings.NewReader(`{"ids":[0,1]}`))
	h.ServeHTTP(failAfterHeaderWriter{httptest.NewRecorder()}, req)
	if !strings.Contains(logBuf.String(), "/docs") {
		t.Errorf("dropped /docs encode error not logged: %q", logBuf.String())
	}

	logBuf.Reset()
	h.ServeHTTP(failAfterHeaderWriter{httptest.NewRecorder()}, httptest.NewRequest("GET", "/stats", nil))
	if !strings.Contains(logBuf.String(), "/stats") {
		t.Errorf("dropped /stats encode error not logged: %q", logBuf.String())
	}
}

// TestServeShardSet: rlzd serves a shard directory transparently and
// /stats carries the per-shard breakdown.
func TestServeShardSet(t *testing.T) {
	docs := makeDocs(30, 9)
	for name, opts := range allBackendOptions(docs) {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "set")
			if _, err := shard.Create(dir, archive.FromBodies(docs), shard.Options{Shards: 4, Archive: opts}); err != nil {
				t.Fatal(err)
			}
			r, err := archive.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { r.Close() })
			srv := serve.New(r, serve.Options{CacheDocs: 8, Workers: 4})
			ts := httptest.NewServer(newMux(srv, nil, muxOptions{maxBatch: 64}))
			t.Cleanup(ts.Close)

			// Every document is served through the routed ids.
			seen := map[string]int{}
			for i := 0; i < len(docs); i++ {
				resp, err := http.Get(ts.URL + "/doc/" + strconv.Itoa(i))
				if err != nil {
					t.Fatal(err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("GET /doc/%d = %d", i, resp.StatusCode)
				}
				seen[string(body)]++
			}
			for _, want := range docs {
				if seen[string(want)] != 1 {
					t.Fatalf("document served %d times", seen[string(want)])
				}
			}
			resp, err := http.Get(ts.URL + "/doc/999")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("out-of-range over shards = %d, want 404", resp.StatusCode)
			}

			resp, err = http.Get(ts.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var st statsResponse
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			if st.NumShards != 4 || len(st.Shards) != 4 {
				t.Fatalf("stats shards = %d/%d entries, want 4", st.NumShards, len(st.Shards))
			}
			totalDocs, totalBytes := 0, int64(0)
			for i, sh := range st.Shards {
				if sh.Path == "" {
					t.Errorf("shard %d has empty path", i)
				}
				totalDocs += sh.NumDocs
				totalBytes += sh.SizeBytes
			}
			if totalDocs != len(docs) {
				t.Errorf("shard doc counts sum to %d, want %d", totalDocs, len(docs))
			}
			if totalBytes != st.ArchiveSize {
				t.Errorf("shard sizes sum to %d, archive_size_bytes %d", totalBytes, st.ArchiveSize)
			}
		})
	}
}

// TestLoadGeneratorAgainstShardedDaemon: the closed-loop load generator
// drives a daemon serving a shard set, end to end.
func TestLoadGeneratorAgainstShardedDaemon(t *testing.T) {
	docs := makeDocs(40, 10)
	dir := filepath.Join(t.TempDir(), "set")
	if _, err := shard.Create(dir, archive.FromBodies(docs), shard.Options{Shards: 5, Archive: allBackendOptions(docs)["rlz"]}); err != nil {
		t.Fatal(err)
	}
	r, err := archive.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	srv := serve.New(r, serve.Options{CacheDocs: 16, Workers: 4})
	ts := httptest.NewServer(newMux(srv, nil, muxOptions{maxBatch: 64}))
	t.Cleanup(ts.Close)
	ids := workload.QueryLog(len(docs), 400, 42)
	res := workload.Run(&workload.HTTPGetter{BaseURL: ts.URL, Client: ts.Client()}, ids, 8)
	if res.Errors != 0 || res.Requests != int64(len(ids)) {
		t.Fatalf("sharded load run: %+v", res)
	}
}
