package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"rlz/internal/collection"
	"rlz/internal/serve"
)

// newAdmissionServer builds an rlzd handler over a live collection opened
// with explicit admission options, so backpressure is reachable in-test.
func newAdmissionServer(t *testing.T, copts collection.Options, mopts muxOptions) (*httptest.Server, *serve.Server, *collection.Collection) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "live")
	if err := collection.Init(dir); err != nil {
		t.Fatal(err)
	}
	col, err := collection.Open(dir, copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { col.Close() })
	srv := serve.New(col, serve.Options{})
	ts := httptest.NewServer(newMux(srv, col, mopts))
	t.Cleanup(ts.Close)
	return ts, srv, col
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestAppendBatchEndpoint: a batch lands in order, ids are contiguous,
// and every document is readable byte-identical right away.
func TestAppendBatchEndpoint(t *testing.T) {
	ts, _, col := newAdmissionServer(t, collection.Options{}, muxOptions{maxBatch: 16})
	docs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), {}, []byte("epsilon")}
	resp, body := postJSON(t, ts.URL+"/append/batch", appendBatchRequest{Docs: docs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch append = %d: %s", resp.StatusCode, body)
	}
	var out appendBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if len(out.IDs) != len(docs) {
		t.Fatalf("acked %d ids, want %d: %s", len(out.IDs), len(docs), body)
	}
	for i, id := range out.IDs {
		if id != i {
			t.Fatalf("ids = %v, want contiguous from 0", out.IDs)
		}
		got, err := col.Get(id)
		if err != nil || !bytes.Equal(got, docs[i]) {
			t.Fatalf("doc %d after batch = (%q, %v), want %q", id, got, err, docs[i])
		}
	}
}

// TestAppendBatchRejects: empty batches 400, over-count batches 413 with
// nothing appended, malformed JSON 400.
func TestAppendBatchRejects(t *testing.T) {
	ts, _, col := newAdmissionServer(t, collection.Options{}, muxOptions{maxBatch: 16, appendBatch: 2})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty", appendBatchRequest{}, http.StatusBadRequest},
		{"over count", appendBatchRequest{Docs: [][]byte{[]byte("a"), []byte("b"), []byte("c")}}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/append/batch", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s = %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}
	resp, err := http.Post(ts.URL+"/append/batch", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	if col.NumDocs() != 0 {
		t.Fatalf("rejected batches appended %d documents", col.NumDocs())
	}
}

// TestAppendBackpressure429: once the admission budget is exhausted the
// write endpoints answer 429 with Retry-After, the shed writes are
// counted separately from errors in /stats, and draining the backlog
// (here: a compaction) reopens admission.
func TestAppendBackpressure429(t *testing.T) {
	ts, _, col := newAdmissionServer(t, collection.Options{MaxPendingDocs: 2},
		muxOptions{maxBatch: 16})
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/append", nil) // body irrelevant; raw bytes endpoint
		_ = body
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d = %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/append", "application/octet-stream", bytes.NewReader([]byte("shed me")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget append = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The batch endpoint sheds the same way, reporting the acked prefix.
	bresp, bbody := postJSON(t, ts.URL+"/append/batch", appendBatchRequest{Docs: [][]byte{[]byte("x")}})
	if bresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch = %d: %s", bresp.StatusCode, bbody)
	}
	var bout appendBatchResponse
	if err := json.Unmarshal(bbody, &bout); err != nil {
		t.Fatalf("decoding %q: %v", bbody, err)
	}
	if len(bout.IDs) != 0 || bout.Error == "" {
		t.Fatalf("over-budget batch response = %+v", bout)
	}

	// Shed writes are visible in /stats as backpressure, not errors.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Backpressure != 2 {
		t.Fatalf("stats backpressure = %d, want 2", st.Backpressure)
	}

	// Draining the backlog reopens admission.
	if _, err := col.Compact(collection.CompactOptions{}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	resp2, err := http.Post(ts.URL+"/append", "application/octet-stream", bytes.NewReader([]byte("admitted again")))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("append after drain = %d, want 200", resp2.StatusCode)
	}
}

// TestAppendBatchPartialAck: when admission closes mid-batch the acked
// prefix is reported alongside the 429 — those documents are durable and
// keep their ids.
func TestAppendBatchPartialAck(t *testing.T) {
	ts, _, col := newAdmissionServer(t, collection.Options{MaxPendingDocs: 2},
		muxOptions{maxBatch: 16})
	docs := [][]byte{[]byte("first"), []byte("second"), []byte("third"), []byte("fourth")}
	resp, body := postJSON(t, ts.URL+"/append/batch", appendBatchRequest{Docs: docs})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("partial batch = %d: %s", resp.StatusCode, body)
	}
	var out appendBatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if len(out.IDs) != 2 || out.Error == "" {
		t.Fatalf("partial batch response = %+v, want 2 acked ids and an error", out)
	}
	for i, id := range out.IDs {
		got, err := col.Get(id)
		if err != nil || !bytes.Equal(got, docs[i]) {
			t.Fatalf("acked doc %d = (%q, %v), want %q", id, got, err, docs[i])
		}
	}
	if col.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want the acked prefix only", col.NumDocs())
	}
}
