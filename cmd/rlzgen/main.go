// Command rlzgen writes synthetic web collections to disk in the warc
// container, so the archive tooling can be exercised without access to
// the paper's TREC corpora.
//
// Usage:
//
//	rlzgen -profile gov -size 64MB -o crawl.warc
//	rlzgen -profile wiki -size 16MB -seed 7 -sort url -o wiki.warc
package main

import (
	"flag"
	"fmt"
	"os"

	"rlz/internal/corpus"
	"rlz/internal/units"
	"rlz/internal/warc"
)

func main() {
	var (
		profile = flag.String("profile", "gov", "collection profile: gov or wiki")
		size    = flag.String("size", "16MB", "approximate total collection size")
		seed    = flag.Int64("seed", 1, "generation seed")
		order   = flag.String("sort", "crawl", "document order: crawl or url")
		out     = flag.String("o", "", "output path (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "rlzgen: -o is required")
		flag.Usage()
		os.Exit(2)
	}
	var p corpus.Profile
	switch *profile {
	case "gov":
		p = corpus.Gov
	case "wiki":
		p = corpus.Wiki
	default:
		fatal(fmt.Errorf("unknown profile %q (gov or wiki)", *profile))
	}
	n, err := units.ParseSize(*size)
	if err != nil {
		fatal(err)
	}
	c := corpus.Generate(p, n, *seed)
	switch *order {
	case "crawl":
	case "url":
		c.SortByURL()
	default:
		fatal(fmt.Errorf("unknown order %q (crawl or url)", *order))
	}
	if err := warc.WriteFile(*out, c.Records()); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d documents, %s, %s order, profile %s, seed %d\n",
		*out, c.Len(), units.FormatSize(int(c.TotalSize())), *order, p.Name, *seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlzgen:", err)
	os.Exit(1)
}
