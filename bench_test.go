// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks: one benchmark per artifact, each a thin
// wrapper over internal/experiment (cmd/rlzbench prints the same tables
// with full formatting).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The default scale matches experiment.Default; -short switches to the
// miniature experiment.Quick configuration. Each benchmark reports the
// key space metric of its table via b.ReportMetric so shapes are visible
// in bench output without re-running the CLI.
package bench

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rlz/internal/archive"
	"rlz/internal/blockstore"
	"rlz/internal/collection"
	"rlz/internal/corpus"
	"rlz/internal/experiment"
	"rlz/internal/rlz"
	"rlz/internal/serve"
	"rlz/internal/shard"
	"rlz/internal/workload"
)

func cfg(b *testing.B) experiment.Config {
	if testing.Short() {
		return experiment.Quick
	}
	return experiment.Default
}

// runTable regenerates one artifact b.N times. metricCol, when >= 0,
// selects a numeric column whose first-row value is reported (e.g. the
// best Enc% of the grid).
func runTable(b *testing.B, id string, metricCol int, metricName string) {
	r, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	c := cfg(b)
	var last *experiment.Table
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	if metricCol >= 0 && len(last.Rows) > 0 {
		v, err := strconv.ParseFloat(strings.TrimSpace(last.Rows[0][metricCol]), 64)
		if err == nil {
			b.ReportMetric(v, metricName)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (GOV2 stand-in factor statistics).
func BenchmarkTable2(b *testing.B) { runTable(b, "Table 2", 2, "avg-factor-len") }

// BenchmarkTable3 regenerates Table 3 (Wikipedia stand-in factor stats).
func BenchmarkTable3(b *testing.B) { runTable(b, "Table 3", 2, "avg-factor-len") }

// BenchmarkFigure3 regenerates Figure 3 (length-value histogram).
func BenchmarkFigure3(b *testing.B) { runTable(b, "Figure 3", -1, "") }

// BenchmarkTable4 regenerates Table 4 (RLZ grid, GOV2 crawl order).
func BenchmarkTable4(b *testing.B) { runTable(b, "Table 4", 2, "enc-pct") }

// BenchmarkTable5 regenerates Table 5 (RLZ grid, GOV2 URL-sorted).
func BenchmarkTable5(b *testing.B) { runTable(b, "Table 5", 2, "enc-pct") }

// BenchmarkTable6 regenerates Table 6 (baselines, GOV2 crawl order).
func BenchmarkTable6(b *testing.B) { runTable(b, "Table 6", 2, "ascii-enc-pct") }

// BenchmarkTable7 regenerates Table 7 (baselines, GOV2 URL-sorted).
func BenchmarkTable7(b *testing.B) { runTable(b, "Table 7", 2, "ascii-enc-pct") }

// BenchmarkTable8 regenerates Table 8 (RLZ grid, Wikipedia).
func BenchmarkTable8(b *testing.B) { runTable(b, "Table 8", 2, "enc-pct") }

// BenchmarkTable9 regenerates Table 9 (baselines, Wikipedia).
func BenchmarkTable9(b *testing.B) { runTable(b, "Table 9", 2, "ascii-enc-pct") }

// BenchmarkTable10 regenerates Table 10 (prefix-dictionary robustness).
func BenchmarkTable10(b *testing.B) { runTable(b, "Table 10", 1, "full-prefix-enc-pct") }

// BenchmarkExtensions regenerates the §6 future-work table (Simple9
// length coding, iterative dictionary refinement).
func BenchmarkExtensions(b *testing.B) { runTable(b, "Extensions", 1, "enc-pct") }

// BenchmarkGenomes regenerates the genome-collection table (RLZ's
// original domain, the paper's citation [20]).
func BenchmarkGenomes(b *testing.B) { runTable(b, "Genomes", 1, "enc-pct") }

// crossBackendOptions enumerates the unified-interface comparison axis:
// RLZ versus the paper's two baselines, one Options per backend.
func crossBackendOptions(coll *corpus.Collection) []struct {
	name string
	opts archive.Options
} {
	dict := rlz.SampleEven(coll.Bytes(), int(coll.TotalSize())/100, 1<<10)
	return []struct {
		name string
		opts archive.Options
	}{
		{"rlz", archive.Options{Backend: archive.RLZ, Dict: dict, Codec: rlz.CodecZV}},
		{"zlib-block", archive.Options{Backend: archive.Block, BlockSize: 256 << 10}},
		{"raw", archive.Options{Backend: archive.Raw}},
	}
}

// BenchmarkCrossBackendGet drives the same query-log random-access
// workload through every backend via the unified archive interface, so
// BENCH_*.json tracks RLZ against both baselines on one axis. Each
// sub-benchmark reports bytes decoded per op plus the backend's encoded
// size as a percentage of raw.
func BenchmarkCrossBackendGet(b *testing.B) {
	c := cfg(b)
	coll := corpus.Generate(corpus.Gov, c.GovBytes, c.Seed)
	raw := coll.TotalSize()
	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	ids := workload.QueryLog(coll.Len(), c.QlogRequests, c.Seed)
	for _, bk := range crossBackendOptions(coll) {
		var buf bytes.Buffer
		if _, err := archive.Build(&buf, archive.FromBodies(bodies), bk.opts); err != nil {
			b.Fatal(err)
		}
		r, err := archive.OpenBytes(buf.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bk.name, func(b *testing.B) {
			var dst []byte
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range ids {
					dst, err = r.GetAppend(dst[:0], id)
					if err != nil {
						b.Fatal(err)
					}
					total += int64(len(dst))
				}
			}
			b.SetBytes(total / int64(b.N))
			b.ReportMetric(100*float64(r.Size())/float64(raw), "enc-pct")
		})
	}
}

// serveBackendOptions is crossBackendOptions plus the block backend's
// codec axis (PR 6): the serving benchmarks track how far the pluggable
// codecs move the zlib cliff without multiplying the build/shard grids.
func serveBackendOptions(coll *corpus.Collection) []struct {
	name string
	opts archive.Options
} {
	out := crossBackendOptions(coll)
	// The speed-tier codecs trade ratio for serving latency, so their
	// serving configuration also trades: 64 KiB blocks cut the decode
	// amplification of a random access 4× against the zlib entry's
	// 256 KiB (the paper-fidelity point, kept unchanged for comparison).
	for _, alg := range []struct {
		name string
		alg  blockstore.Algorithm
	}{
		{"flate-block", blockstore.Flate},
		{"lzr-block", blockstore.LZR},
	} {
		out = append(out, struct {
			name string
			opts archive.Options
		}{alg.name, archive.Options{Backend: archive.Block, BlockSize: 64 << 10, Algorithm: alg.alg}})
	}
	return out
}

// BenchmarkBlockCodecs is the codec matrix behind the README table: for
// each block compressor, encoded size as a percentage of raw (enc-pct)
// and single-threaded query-log decode throughput through one Reader.
func BenchmarkBlockCodecs(b *testing.B) {
	c := cfg(b)
	coll := corpus.Generate(corpus.Gov, c.GovBytes, c.Seed)
	raw := coll.TotalSize()
	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	ids := workload.QueryLog(coll.Len(), c.QlogRequests, c.Seed)
	for _, alg := range []blockstore.Algorithm{blockstore.Zlib, blockstore.Flate, blockstore.LZ77, blockstore.LZR} {
		var buf bytes.Buffer
		opts := archive.Options{Backend: archive.Block, BlockSize: 256 << 10, Algorithm: alg}
		if _, err := archive.Build(&buf, archive.FromBodies(bodies), opts); err != nil {
			b.Fatal(err)
		}
		r, err := archive.OpenBytes(buf.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(alg.String(), func(b *testing.B) {
			var dst []byte
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, id := range ids {
					dst, err = r.GetAppend(dst[:0], id)
					if err != nil {
						b.Fatal(err)
					}
					total += int64(len(dst))
				}
			}
			b.SetBytes(total / int64(b.N))
			b.ReportMetric(100*float64(r.Size())/float64(raw), "enc-pct")
		})
	}
}

// BenchmarkConcurrentGet measures the serving layer under load: a
// closed-loop 8-worker query-log (zipfian) workload retrieving batches
// through a shared serve.Server, for every backend, cached and uncached.
// This is the paper's random-access claim measured the way a frontend
// pool exercises it, rather than one Get at a time.
func BenchmarkConcurrentGet(b *testing.B) {
	const workers = 8
	c := cfg(b)
	coll := corpus.Generate(corpus.Gov, c.GovBytes, c.Seed)
	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	ids := workload.QueryLog(coll.Len(), c.QlogRequests, c.Seed)
	for _, bk := range serveBackendOptions(coll) {
		var buf bytes.Buffer
		if _, err := archive.Build(&buf, archive.FromBodies(bodies), bk.opts); err != nil {
			b.Fatal(err)
		}
		r, err := archive.OpenBytes(buf.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		for _, cacheDocs := range []int{0, 256} {
			name := bk.name + "/uncached"
			if cacheDocs > 0 {
				name = bk.name + "/cached"
			}
			b.Run(name, func(b *testing.B) {
				srv := serve.New(r, serve.Options{CacheDocs: cacheDocs, Workers: workers})
				b.ResetTimer()
				var bytesServed int64
				for i := 0; i < b.N; i++ {
					res := workload.Run(srv, ids, workers)
					if res.Errors > 0 {
						b.Fatalf("%d errors in load run", res.Errors)
					}
					bytesServed += res.Bytes
				}
				b.SetBytes(bytesServed / int64(b.N))
				st := srv.Stats()
				b.ReportMetric(float64(st.P50Nanos), "p50-ns")
				b.ReportMetric(float64(st.P99Nanos), "p99-ns")
				if st.CacheHits+st.CacheMisses > 0 {
					b.ReportMetric(100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses), "hit-pct")
				}
			})
		}
	}
}

// BenchmarkConcurrentGetBatch drives the same workload through the batch
// API: one GetBatch per chunk of 64 ids, fanned across the Server's
// worker pool.
func BenchmarkConcurrentGetBatch(b *testing.B) {
	c := cfg(b)
	coll := corpus.Generate(corpus.Gov, c.GovBytes, c.Seed)
	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	ids := workload.QueryLog(coll.Len(), c.QlogRequests, c.Seed)
	for _, bk := range serveBackendOptions(coll) {
		var buf bytes.Buffer
		if _, err := archive.Build(&buf, archive.FromBodies(bodies), bk.opts); err != nil {
			b.Fatal(err)
		}
		r, err := archive.OpenBytes(buf.Bytes())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bk.name, func(b *testing.B) {
			srv := serve.New(r, serve.Options{CacheDocs: 256, Workers: 8})
			b.ResetTimer()
			var total int64
			for i := 0; i < b.N; i++ {
				for off := 0; off < len(ids); off += 64 {
					end := off + 64
					if end > len(ids) {
						end = len(ids)
					}
					for _, res := range srv.GetBatch(ids[off:end]) {
						if res.Err != nil {
							b.Fatal(res.Err)
						}
						total += int64(len(res.Data))
					}
				}
			}
			b.SetBytes(total / int64(b.N))
		})
	}
}

// shardCounts is the sharding axis of the sharded benchmarks: a single
// shard (the monolithic baseline through the shard layer), a small set
// and a wide set.
var shardCounts = []int{1, 4, 16}

// BenchmarkShardedGet measures random access through the shard routing
// layer: the query-log workload against shard sets of 1, 4 and 16
// shards for every backend, read through archive.Open's auto-detected
// shard Reader. The single-shard case prices the routing layer itself
// against BenchmarkCrossBackendGet.
func BenchmarkShardedGet(b *testing.B) {
	c := cfg(b)
	coll := corpus.Generate(corpus.Gov, c.GovBytes, c.Seed)
	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	ids := workload.QueryLog(coll.Len(), c.QlogRequests, c.Seed)
	for _, bk := range crossBackendOptions(coll) {
		for _, n := range shardCounts {
			dir := filepath.Join(b.TempDir(), fmt.Sprintf("%s-%d", bk.name, n))
			if _, err := shard.Create(dir, archive.FromBodies(bodies), shard.Options{Shards: n, Archive: bk.opts}); err != nil {
				b.Fatal(err)
			}
			r, err := archive.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/shards=%d", bk.name, n), func(b *testing.B) {
				var dst []byte
				var total int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, id := range ids {
						dst, err = r.GetAppend(dst[:0], id)
						if err != nil {
							b.Fatal(err)
						}
						total += int64(len(dst))
					}
				}
				b.SetBytes(total / int64(b.N))
			})
			r.Close()
		}
	}
}

// BenchmarkShardedBuild measures the partitioned parallel build: N
// per-shard pipelines fed by the routing goroutine, in raw bytes
// consumed per second, across the same shard × backend grid.
func BenchmarkShardedBuild(b *testing.B) {
	c := cfg(b)
	coll := corpus.Generate(corpus.Gov, c.GovBytes/2, c.Seed)
	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	for _, bk := range crossBackendOptions(coll) {
		for _, n := range shardCounts {
			b.Run(fmt.Sprintf("%s/shards=%d", bk.name, n), func(b *testing.B) {
				b.SetBytes(coll.TotalSize())
				for i := 0; i < b.N; i++ {
					dir := filepath.Join(b.TempDir(), strconv.Itoa(i))
					if _, err := shard.Create(dir, archive.FromBodies(bodies), shard.Options{Shards: n, Archive: bk.opts}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCrossBackendBuild measures the streaming parallel build
// pipeline for every backend, in raw bytes consumed per second.
func BenchmarkCrossBackendBuild(b *testing.B) {
	c := cfg(b)
	coll := corpus.Generate(corpus.Gov, c.GovBytes/2, c.Seed)
	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	for _, bk := range crossBackendOptions(coll) {
		b.Run(bk.name, func(b *testing.B) {
			b.SetBytes(coll.TotalSize())
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if _, err := archive.Build(&buf, archive.FromBodies(bodies), bk.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMixedAppendRead measures the live-collection serving path
// under the workload it exists for: a closed-loop mix of 90% reads and
// 10% appends through a shared serve.Server over a live collection.
// Three shapes: reads landing on the open (raw) segment, reads landing
// on a compacted RLZ segment, and the same with the hot-document cache —
// the first end-to-end numbers of the serving perf trajectory
// (BENCH_serve.json).
func BenchmarkMixedAppendRead(b *testing.B) {
	const workers = 8
	c := cfg(b)
	coll := corpus.Generate(corpus.Gov, c.GovBytes, c.Seed)
	bodies := make([][]byte, coll.Len())
	for i, d := range coll.Docs {
		bodies[i] = d.Body
	}
	nAppend := len(bodies) / 10
	if nAppend < 1 {
		nAppend = 1
	}
	seed, appendDocs := bodies[:len(bodies)-nAppend], bodies[len(bodies)-nAppend:]
	ids := workload.QueryLog(len(seed), c.QlogRequests, c.Seed)
	shapes := []struct {
		name      string
		compacted bool
		cacheDocs int
	}{
		{"open-raw/uncached", false, 0},
		{"compacted-rlz/uncached", true, 0},
		{"compacted-rlz/cached", true, 256},
	}
	for _, shape := range shapes {
		b.Run(shape.name, func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "live")
			if err := collection.Init(dir); err != nil {
				b.Fatal(err)
			}
			// Async keeps this benchmark measuring the serving path, not
			// fsync latency — the shape it has recorded since PR 5, from
			// before appends became durable by default. The durability
			// modes are costed separately by BenchmarkDurableAppend.
			col, err := collection.Open(dir, collection.Options{Async: true})
			if err != nil {
				b.Fatal(err)
			}
			defer col.Close()
			for _, d := range seed {
				if _, err := col.Append(d); err != nil {
					b.Fatal(err)
				}
			}
			if shape.compacted {
				if _, err := col.Compact(collection.CompactOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			srv := serve.New(col, serve.Options{CacheDocs: shape.cacheDocs, Workers: workers})
			b.ResetTimer()
			var served int64
			for i := 0; i < b.N; i++ {
				res := workload.RunMixed(srv, col, ids, appendDocs, workers)
				if res.Errors > 0 {
					b.Fatalf("%d errors in mixed run", res.Errors)
				}
				served += res.ReadBytes + res.AppendBytes
			}
			b.SetBytes(served / int64(b.N))
			b.ReportMetric(float64(len(ids)+nAppend)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkDurableAppend costs the write path's durability modes
// (BENCH_wal.json): group commit (the default — appends join a shared
// WAL batch and one fsync acknowledges all of them), per-append fsync
// (SyncAppends), and async (pre-WAL acknowledgment from memory, the
// durability-free ceiling). Workers are explicit goroutines, each a
// closed loop over one shared collection: group commit's whole point is
// that concurrent appends amortize the fsync, so the 8-worker rows are
// the headline — the acceptance floor is group commit at or above 5x
// the per-append-fsync throughput there.
func BenchmarkDurableAppend(b *testing.B) {
	doc := bytes.Repeat([]byte("durable-append-payload."), 45) // ~1 KiB
	modes := []struct {
		name string
		opts collection.Options
	}{
		{"group-commit", collection.Options{}},
		{"fsync-per-append", collection.Options{SyncAppends: true}},
		{"async", collection.Options{Async: true}},
	}
	for _, mode := range modes {
		for _, workers := range []int{1, 8} {
			b.Run(mode.name+"/w"+strconv.Itoa(workers), func(b *testing.B) {
				dir := filepath.Join(b.TempDir(), "wal-bench")
				if err := collection.Init(dir); err != nil {
					b.Fatal(err)
				}
				col, err := collection.Open(dir, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				defer col.Close()
				b.SetBytes(int64(len(doc)))
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				var failed atomic.Value
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for int(next.Add(1)) <= b.N {
							if _, err := col.Append(doc); err != nil {
								failed.Store(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				if err := failed.Load(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/s")
			})
		}
	}
}
