package bench

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"rlz/internal/collection"
	"rlz/internal/corpus"
)

// dictRounds generates the drifted append workload of the dictionary
// trajectory (BENCH_dict.json): each round is a fresh crawl slice of
// the same profile under a different seed, so the vocabulary, hosts and
// site templates shift between rounds — the content drift that makes a
// round-0 dictionary go stale and that adaptive re-sampling exists to
// chase.
func dictRounds(p corpus.Profile, rounds, roundBytes int, seed int64) [][][]byte {
	out := make([][][]byte, rounds)
	for r := range out {
		coll := corpus.Generate(p, roundBytes, seed+int64(r)*17)
		bodies := make([][]byte, coll.Len())
		for i, d := range coll.Docs {
			bodies[i] = d.Body
		}
		out[r] = bodies
	}
	return out
}

// dictTrajectory runs one static-vs-adaptive trajectory arm: append
// each round, compact with opts, and report the compression ratios the
// run ends at. lastRatio is the final round's percent-of-original (the
// headline: it isolates how well the dictionary in force matches the
// drifted tail), cumRatio the whole collection's, compactSec the total
// time spent inside Compact, adopted how many new dictionary
// generations were published after the first.
func dictTrajectory(tb testing.TB, rounds [][][]byte, opts collection.CompactOptions) (lastRatio, cumRatio, compactSec float64, adopted int) {
	tb.Helper()
	dir := filepath.Join(tb.TempDir(), "traj")
	if err := collection.Init(dir); err != nil {
		tb.Fatal(err)
	}
	col, err := collection.Open(dir, collection.Options{Async: true})
	if err != nil {
		tb.Fatal(err)
	}
	defer col.Close()
	var rawTotal, lastBefore, lastAfter int64
	for _, bodies := range rounds {
		for _, d := range bodies {
			if _, err := col.Append(d); err != nil {
				tb.Fatal(err)
			}
			rawTotal += int64(len(d))
		}
		start := time.Now()
		res, err := col.Compact(opts)
		compactSec += time.Since(start).Seconds()
		if err != nil {
			tb.Fatal(err)
		}
		if res.Compacted == 0 {
			tb.Fatal("compaction drained nothing")
		}
		if res.Relearned && res.Dict > 1 {
			adopted++
		}
		lastBefore, lastAfter = res.BytesBefore, res.BytesAfter
	}
	var compTotal int64
	for _, s := range col.Info().Segments {
		compTotal += s.Size
	}
	lastRatio = 100 * float64(lastAfter) / float64(lastBefore)
	cumRatio = 100 * float64(compTotal) / float64(rawTotal)
	return lastRatio, cumRatio, compactSec, adopted
}

// adaptiveCompactOptions is the adaptive arm's shipping-shaped
// configuration: default adoption gate (2% trial gain), but an eviction
// fraction matched to the workload's heavy drift — half the dictionary
// turns over per adopted generation.
var adaptiveCompactOptions = collection.CompactOptions{Adapt: true, EvictFraction: 0.5}

// BenchmarkDictTrajectory is the ratio-vs-throughput trajectory of the
// adaptive-dictionary PR (BENCH_dict.json): N append/compact rounds of
// drifted gov/wiki stand-in crawls, compacted either against the
// round-0 dictionary forever (static — the pre-PR behavior) or with
// Adapt re-sampling cold regions from each round's drained documents.
// The ratio-pct metrics are the final round's percent-of-original;
// compact-MB/s is raw bytes drained per second of Compact wall time,
// the throughput the adaptation's trial factorization and re-sampling
// tax.
func BenchmarkDictTrajectory(b *testing.B) {
	c := cfg(b)
	const rounds = 4
	profiles := []struct {
		name  string
		p     corpus.Profile
		bytes int
	}{
		{"gov", corpus.Gov, c.GovBytes},
		{"wiki", corpus.Wiki, c.WikiBytes},
	}
	modes := []struct {
		name string
		opts collection.CompactOptions
	}{
		{"static", collection.CompactOptions{}},
		{"adaptive", adaptiveCompactOptions},
	}
	for _, pr := range profiles {
		work := dictRounds(pr.p, rounds, pr.bytes/rounds, c.Seed)
		var raw int64
		for _, bodies := range work {
			for _, d := range bodies {
				raw += int64(len(d))
			}
		}
		for _, mode := range modes {
			b.Run(pr.name+"/"+mode.name, func(b *testing.B) {
				var lastRatio, cumRatio, compactSec float64
				var adopted int
				for i := 0; i < b.N; i++ {
					lastRatio, cumRatio, compactSec, adopted = dictTrajectory(b, work, mode.opts)
				}
				b.ReportMetric(lastRatio, "last-round-ratio-pct")
				b.ReportMetric(cumRatio, "cum-ratio-pct")
				b.ReportMetric(float64(raw)/1e6/compactSec, "compact-MB/s")
				b.ReportMetric(float64(adopted), "dicts-adopted")
			})
		}
	}
}

// TestAdaptiveRatioFloor is the CI bench smoke for the adaptive
// dictionary (the BENCH_dict.json trajectory): a miniature drifted
// gov-profile run must show the adaptive arm beating the static one on
// the final round's ratio by a healthy margin, and adopting at least
// one new generation along the way. The floor (10% relative
// improvement) sits well under the recorded trajectory's gap so corpus
// tweaks don't flake it while a broken heat/eviction/adoption path —
// which collapses the gap to ~0 — still trips it. Ratios are
// deterministic in the seeds; the gate keeps local `go test` fast, not
// stable — CI sets RLZ_BENCH_SMOKE=1.
func TestAdaptiveRatioFloor(t *testing.T) {
	if os.Getenv("RLZ_BENCH_SMOKE") == "" {
		t.Skip("set RLZ_BENCH_SMOKE=1 to run the adaptive ratio floor guard")
	}
	const (
		rounds     = 3
		roundBytes = 2 << 20
		seed       = 7
	)
	work := dictRounds(corpus.Gov, rounds, roundBytes, seed)
	staticLast, _, _, _ := dictTrajectory(t, work, collection.CompactOptions{})
	adaptLast, _, _, adopted := dictTrajectory(t, work, adaptiveCompactOptions)
	if adopted == 0 {
		t.Fatal("adaptive trajectory adopted no new dictionary generation on a drifted workload")
	}
	improvement := 1 - adaptLast/staticLast
	t.Logf("final-round ratio: static %.2f%%, adaptive %.2f%% (%.1f%% better, %d generations adopted)",
		staticLast, adaptLast, 100*improvement, adopted)
	if improvement < 0.10 {
		t.Errorf("adaptive final-round ratio %.2f%% improves on static %.2f%% by only %.1f%%, want >= 10%% (see BENCH_dict.json)",
			adaptLast, staticLast, 100*improvement)
	}
}

// TestDictTrajectorySmoke keeps the trajectory harness itself under
// ordinary `go test`: a tiny two-round run must compact every round and
// produce sane ratios in both modes.
func TestDictTrajectorySmoke(t *testing.T) {
	work := dictRounds(corpus.Gov, 2, 256<<10, 3)
	for _, opts := range []collection.CompactOptions{{}, adaptiveCompactOptions} {
		last, cum, _, _ := dictTrajectory(t, work, opts)
		if last <= 0 || last > 100 || cum <= 0 || cum > 100 {
			t.Fatalf("adapt=%v: ratios last=%.2f cum=%.2f out of range", opts.Adapt, last, cum)
		}
	}
}
